(** PA-R — the randomized scheduler variant (Sec. VI, Algorithm 1).

    Repeatedly runs the deterministic pipeline with a random processing
    order for non-critical hardware tasks, keeping the best schedule that
    passes the floorplan check. The floorplanner is only consulted when a
    candidate improves on the incumbent, amortizing its cost;
    floorplan-infeasible candidates are discarded rather than triggering
    the resource-shrinking restart of PA.

    Both entry points accept a {!Resched_floorplan.Fp_cache.t} so that
    repeated region-need multisets skip the floorplanner entirely, and
    {!run_parallel} fans the restart loop out over OCaml 5 domains with a
    shared atomic incumbent makespan. The restart stream itself is
    reified as a resumable {!Course}, which the batch engine
    ({!Batch.run}) interleaves across instances in slices. *)

type trace_point = {
  elapsed : float;
      (** seconds since the run started, read at the start of the
          improving iteration *)
  iteration : int;
      (** 1-based iteration index within the stream that found the
          improvement (worker-local under {!run_parallel}) *)
  makespan : int;  (** best feasible makespan at that moment *)
}

type outcome = {
  schedule : Schedule.t option;
      (** best feasible schedule; [None] only if no iteration produced a
          floorplannable schedule within the budget *)
  iterations : int;
      (** total restart iterations, summed over workers *)
  trace : trace_point list;  (** improvements, oldest first (Fig. 6) *)
  minor_words : float;
      (** minor-heap words allocated by the restart iterations, summed
          over workers ({!Gc.minor_words} deltas around each slice) —
          divide by [iterations] for the words/iteration telemetry *)
}

type kernel = [ `Soa | `Boxed ]
(** Which restart kernel the iterations run. [`Soa] (the default) runs
    steps 3-7 over the context arena's flat struct-of-arrays scratch
    buffers ({!Pa.schedule_candidate}) and only materializes a boxed
    {!Schedule.t} for claimed improvements. [`Boxed] is the bit-identity
    oracle: every iteration builds a fresh state and a boxed schedule
    through the legacy list-based pipeline ({!Pa.schedule_once} without
    a context). Both produce bit-identical outcomes for a fixed seed
    and iteration count (property-tested); they differ in allocation
    rate and wall-clock only. *)

(** A resumable restart stream: the loop body of {!run}, reified so the
    same stream can run to completion on one domain or be advanced in
    bounded slices — possibly from different domains over its lifetime —
    with bit-identical results. The stream owns its RNG, its adaptive
    shrink exponent and its incumbent; the restart arena stays
    domain-local and is re-fetched from the per-domain cache on every
    slice, so migrating a course between domains never shares mutable
    state. Not thread-safe: advance a given course from one domain at a
    time. *)
module Course : sig
  type t

  val create : ?config:Pa.config -> ?cache:Resched_floorplan.Fp_cache.t ->
    ?incremental:bool -> ?kernel:kernel -> ?start:float ->
    ?cancel:(unit -> bool) -> seed:int ->
    min_iterations:int -> budget_seconds:float ->
    Resched_platform.Instance.t -> t
  (** A fresh stream with its own incumbent, replaying exactly what
      {!run} with the same arguments would do. [start] (default: now)
      anchors the wall-clock budget and the trace's [elapsed] stamps —
      the batch engine passes one common origin for all its courses.

      [cancel] is a cooperative cancellation checkpoint: it is polled
      once at the start of every {!run_slice} (never inside the
      iteration loop), and the first [true] finishes the stream
      immediately — {!outcome} keeps whatever incumbent the stream had.
      A cancelled course therefore stops within one slice of the
      cancellation signal, which is how the serve layer enforces
      per-request deadline budgets without hanging a worker. A hook
      that never fires leaves the iteration stream bit-identical to a
      course created without one. *)

  val run_slice : t -> max_iterations:int -> int
  (** Advance by at most [max_iterations] restarts on the calling
      domain; returns how many were executed (0 when already finished
      or cancelled). The stream finishes when it has met its
      [min_iterations] and the budget is exhausted, or as soon as its
      [cancel] hook fires. Slicing is invariant: any partition of the
      iteration budget into slices yields the same outcome as one
      uninterrupted run (property-tested). *)

  val finished : t -> bool
  val iterations : t -> int

  val minor_words : t -> float
  (** Minor-heap words allocated so far by this course's slices. *)

  val instance : t -> Resched_platform.Instance.t

  val outcome : t -> outcome
  (** Snapshot of the stream's result; normally read once [finished]. *)
end

val run : ?config:Pa.config -> ?seed:int -> ?min_iterations:int ->
  ?cache:Resched_floorplan.Fp_cache.t -> ?incremental:bool ->
  ?kernel:kernel -> budget_seconds:float ->
  Resched_platform.Instance.t -> outcome
(** Algorithm 1 with a wall-clock budget. [min_iterations] (default 1)
    iterations are executed even if the budget is already exhausted, so a
    tiny budget still returns a schedule whenever one is floorplannable.
    The [config]'s [ordering] field is ignored (PA-R always randomizes
    non-critical tasks). When [cache] is given, floorplan verdicts are
    memoized through it. With [~subsumption:false] the cache's verdicts
    are a pure function of the query — the engine's answer for the
    canonically sorted needs — so any two runs through such caches
    (fresh, shared, or reused) produce identical results for a fixed
    iteration count. They can still differ from a {e cache-less} run
    where the engine's node budget bites (the canonical order may
    explore the search space differently), and a cache with the
    dominance index enabled ([subsumption:true], the default) may
    additionally decide candidates the bare engine would call
    [Unknown] — both effects steer the adaptive resource scale onto a
    different (still valid) trajectory.

    The adaptive virtual resource scale moves on the integer
    [shrink_factor^k] lattice (k in [0..6]) so the per-scale restart
    memo and the floorplan cache see repeated keys.

    [incremental] (default [true]) runs each iteration through a
    per-worker {!Pa.Context} restart arena; [incremental:false] — like
    [kernel:`Boxed] — is the from-scratch oracle path. All combinations
    produce bit-identical candidate streams for a fixed
    [(seed, min_iterations, budget_seconds = 0.)] configuration. *)

val run_parallel : ?config:Pa.config -> ?seed:int -> ?min_iterations:int ->
  ?jobs:int -> ?pool:Resched_util.Domain_pool.Pool.t ->
  ?cache:Resched_floorplan.Fp_cache.t -> ?incremental:bool ->
  ?kernel:kernel -> budget_seconds:float ->
  Resched_platform.Instance.t -> outcome
(** [run] fanned out over [jobs] worker domains (default
    {!Resched_util.Domain_pool.available_cores}) sharing one atomic
    incumbent makespan — a worker floorplans a candidate only if it beats
    the best found by {e any} worker — and, when given, one [cache].

    With [pool], the fan-out reuses that persistent pool's resident
    domains instead of spawning fresh ones per call — across a batch of
    runs this amortizes domain spawn/join and keeps per-domain state
    warm: each worker's {!Pa.Context} restart arena (cached in
    domain-local storage, keyed by instance identity) and its floorplan
    cache L1 memo survive between calls. [jobs] then defaults to the
    pool's width, and giving both with different values is an error.
    Pool reuse never changes results: worker 0 still runs on the calling
    domain, and arena reuse is bit-identical by construction.

    Reproducibility: worker 0 replays exactly the stream [run] would use
    for [seed]; workers 1..jobs-1 use independent streams split from
    [seed], so the set of candidate streams is a function of
    [(seed, jobs)] alone. [jobs = 1] is literally [run]. Under a non-zero
    wall-clock budget the {e number} of iterations each stream completes
    still depends on machine load, so only [budget_seconds = 0.] with
    [min_iterations] set gives bit-identical outcomes across runs; see
    DESIGN.md for the full determinism discussion.

    [min_iterations] is a total: each worker performs at least
    [ceil (min_iterations / jobs)] iterations. The merged trace is
    globally ordered by elapsed time and strictly improving. *)
