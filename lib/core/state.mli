(** Mutable working state shared by the scheduler's pipeline steps.

    Holds the current implementation choice per task, the *augmented*
    dependency graph (application edges plus the ordering edges inserted
    when tasks share a reconfigurable region or a processor), the set of
    reconfigurable regions built so far, and the CPM time windows, which
    must be refreshed after any change ({!refresh_windows}).

    A state can be recycled across the restart iterations of the
    randomized scheduler: {!reset} restores every mutable part to the
    just-created picture while reusing the existing arrays and graph
    storage (see {!Pa.Context}). *)

module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm

type region = {
  id : int;
  res : Resched_fabric.Resource.t;
  bits : float;  (** [bit_s] (eq. 1) *)
  reconf : int;  (** [reconf_s] in ticks (eq. 2) *)
  mutable tasks : int list;  (** assigned tasks, kept sorted by [t_min] *)
}

type scratch
(** Reusable workspaces for allocation-free pipeline steps
    (restart-arena states only): CPM buffers + durations for window
    refreshes, plus size-[n] int/float/bool arrays the steps borrow for
    sorting and marking. *)

val sc_tasks : scratch -> int array
(** Size-[n] int workspace. Contents are clobbered by any pipeline step
    that borrows it; never hold it across a step. *)

val sc_keys : scratch -> float array
(** Size-[n] unboxed float workspace (sort keys). Same borrowing rule
    as {!sc_tasks}. *)

val sc_flags : scratch -> bool array
(** Size-[n] bool workspace. Same borrowing rule as {!sc_tasks}. *)

val sc_mark : scratch -> bool array
(** Second size-[n] bool workspace (also the cycle-guard mark array —
    any {!assign_to_region} clobbers it). Same borrowing rule. *)

type t = {
  inst : Resched_platform.Instance.t;
  max_res : Resched_fabric.Resource.t;
      (** virtually reduced FPGA availability for this attempt *)
  cost : Cost.t;
  impl_of : int array;  (** current implementation index per task *)
  dep : Graph.t;  (** augmented dependency graph (owned copy) *)
  mutable regions_arr : region array;
      (** region slots; only the first [nregions] entries are live.
          Prefer {!iter_regions}/{!nth_region}/{!region_list}. *)
  mutable nregions : int;  (** regions created so far *)
  mutable used : Resched_fabric.Resource.t;
      (** running sum of all regions' requirements *)
  region_of : int array;  (** region id or -1 *)
  processor_of : int array;  (** processor id or -1 *)
  mutable cpm : Cpm.t;  (** windows for the current durations/graph *)
  scratch : scratch option;
      (** when present, {!refresh_windows} recycles one set of CPM
          arrays: the record in [cpm] is then only valid until the next
          refresh (copy what must survive). [Pa.Context] arena states
          carry scratch; plain states never do. *)
}

val create : Resched_platform.Instance.t -> ?resource_scale:float ->
  ?cost:Cost.t -> ?base_cpm:Cpm.t -> ?scratch:bool -> impl_of:int array ->
  unit -> t
(** Fresh state with the given initial implementation selection; windows
    are computed immediately from the initial durations (no placeholder
    pass). [resource_scale] (default 1.0) virtually scales the device's
    [maxRes] (floorplan-retry rule, Sec. V-H). [cost] and [base_cpm]
    share already-computed iteration-invariant values (the cost weights
    for this [max_res], and the CPM of the unaugmented graph under the
    initial durations); when omitted they are computed here. A shared
    [base_cpm] is never mutated — window refreshes never write into its
    arrays. [scratch] (default false) equips the state for
    allocation-free window refreshes; see the [scratch] field. *)

val reset : t -> impl_of:int array -> base_cpm:Cpm.t -> unit
(** Restore the state to what [create] with the same arguments would
    build — initial implementations, pristine dependency graph, no
    regions, no processor assignments, base windows — reusing the
    existing arrays and adjacency storage instead of reallocating.
    [impl_of] and [base_cpm] must correspond to this state's
    [max_res]/[cost] (they come from the same {!Pa.Context} entry). *)

val impl : t -> int -> Resched_platform.Impl.t
(** The currently selected implementation of a task. *)

val duration : t -> int -> int
val durations : t -> int array

val is_hw : t -> int -> bool
(** Is the currently selected implementation a hardware one? *)

val hw_impls : t -> int -> (int * Resched_platform.Impl.t) list
(** [Instance.hw_impls] for this state's instance; arena states answer
    from a list cached at creation (same contents, no allocation). *)

val refresh_windows : t -> unit
(** Recompute CPM windows for the current durations and augmented graph. *)

val t_min : t -> int -> int
val t_max : t -> int -> int

val regions : t -> region list
(** Regions in creation order (allocates one list per call). *)

val iter_regions : t -> (region -> unit) -> unit
(** Apply a function to every region in creation order without
    allocating the list {!regions} builds. *)

val nth_region : t -> int -> region
(** Region by creation index, O(1). Raises [Invalid_argument] when out
    of range. *)

val scratch_of : t -> scratch option
(** This state's scratch workspaces, when it was created with
    [~scratch:true]. *)

val region_count : t -> int

val used_resources : t -> Resched_fabric.Resource.t
(** Sum of the resource requirements of all regions created so far;
    maintained incrementally, O(1). *)

val fits_on_fpga : t -> Resched_fabric.Resource.t -> bool
(** Would a new region with the given requirement still fit [max_res]
    next to the existing regions? O(1) against the running total. *)

val new_region : t -> Resched_fabric.Resource.t -> region
(** Create a region sized for the given requirement (eqs. 1-2 fix its
    bitstream and reconfiguration time). Does not check capacity. O(1)
    append. *)

val assign_to_region : t -> task:int -> region -> unit
(** Place the task on the region: records the placement, inserts the
    region-ordering edges dictated by the current windows, keeps the
    region's task list sorted by [t_min], and refreshes the windows.
    Raises [Invalid_argument] if the insertion would create a dependency
    cycle (callers must have checked window compatibility). *)

val switch_to_sw : t -> task:int -> unit
(** Select the task's fastest software implementation and refresh the
    windows. *)

val switch_to_hw : t -> task:int -> impl_idx:int -> region -> unit
(** Software-balancing move (Sec. V-D): adopt the given hardware
    implementation and place the task on [region]. *)

val region_list : t -> region array
(** Regions in creation order. *)

val find_region : t -> int -> region
(** Region by id; raises [Not_found]. *)
