module Resource = Resched_fabric.Resource
module Rng = Resched_util.Rng
module Impl = Resched_platform.Impl

type ordering =
  | By_efficiency
  | By_cost
  | Topological
  | Random of Rng.t

let same_module (a : Impl.t) (b : Impl.t) =
  match (a.module_id, b.module_id) with
  | Some x, Some y -> x = y
  | _ -> false

let windows_disjoint state ~task (region : State.region) =
  List.for_all
    (fun u ->
      State.t_max state u <= State.t_min state task
      || State.t_max state task <= State.t_min state u)
    region.State.tasks

(* Neighbours of [task]'s window among the region's hosted tasks: the
   hosted task whose window ends last before [task]'s starts, and the one
   whose window starts first after [task]'s ends. *)
let window_neighbours state ~task (region : State.region) =
  let prev = ref None and next = ref None in
  List.iter
    (fun u ->
      if State.t_max state u <= State.t_min state task then begin
        match !prev with
        | Some p when State.t_max state p >= State.t_max state u -> ()
        | _ -> prev := Some u
      end
      else if State.t_min state u >= State.t_max state task then begin
        match !next with
        | Some nx when State.t_min state nx <= State.t_min state u -> ()
        | _ -> next := Some u
      end)
    region.State.tasks;
  (!prev, !next)

let reconf_gaps_ok ?(module_reuse = false) state ~task region =
  let reconf = region.State.reconf in
  let reuse a b =
    module_reuse && same_module (State.impl state a) (State.impl state b)
  in
  let prev, next = window_neighbours state ~task region in
  let before_ok =
    match prev with
    | None -> true (* the task becomes the region's first: initial
                      configuration is free *)
    | Some p ->
      reuse p task || State.t_min state task - State.t_max state p >= reconf
  in
  let after_ok =
    match next with
    | None -> true
    | Some nx ->
      reuse task nx || State.t_min state nx - State.t_max state task >= reconf
  in
  before_ok && after_ok

let fits_region state ~task (region : State.region) =
  Resource.fits (State.impl state task).Impl.res ~within:region.State.res

let region_compatible_critical ?module_reuse state ~task region =
  fits_region state ~task region
  && windows_disjoint state ~task region
  && reconf_gaps_ok ?module_reuse state ~task region

let region_compatible_non_critical state ~task region =
  fits_region state ~task region && windows_disjoint state ~task region

(* First region (in creation order) with the strictly lowest bitstream
   among those satisfying [ok] — what folding the filtered
   creation-order list with a strict [<] used to pick, without building
   that list. *)
let best_compatible state ~ok =
  let best = ref None in
  State.iter_regions state (fun (r : State.region) ->
      if ok r then
        match !best with
        | Some (b : State.region) when b.State.bits <= r.State.bits -> ()
        | _ -> best := Some r);
  !best

(* Assign one critical hardware task per the three-way rule of Sec. V-C. *)
let place_critical ?module_reuse state ~task =
  let need = (State.impl state task).Impl.res in
  let compatible =
    best_compatible state ~ok:(fun r ->
        region_compatible_critical ?module_reuse state ~task r)
  in
  match compatible with
  | Some region -> State.assign_to_region state ~task region
  | None ->
    if State.fits_on_fpga state need then begin
      let region = State.new_region state need in
      State.assign_to_region state ~task region
    end
    else State.switch_to_sw state ~task

(* Non-critical tasks aim at maximizing FPGA utilization: prefer a fresh
   region, then reuse, then software. *)
let place_non_critical state ~task =
  let need = (State.impl state task).Impl.res in
  if State.fits_on_fpga state need then begin
    let region = State.new_region state need in
    State.assign_to_region state ~task region
  end
  else begin
    let compatible =
      best_compatible state ~ok:(fun r ->
          region_compatible_non_critical state ~task r)
    in
    match compatible with
    | Some region -> State.assign_to_region state ~task region
    | None -> State.switch_to_sw state ~task
  end

let sort_tasks state ordering tasks =
  let efficiency u = Cost.efficiency state.State.cost (State.impl state u) in
  let cost u = Cost.cost state.State.cost (State.impl state u) in
  match ordering with
  | By_efficiency ->
    List.stable_sort (fun a b -> compare (efficiency b) (efficiency a)) tasks
  | By_cost -> List.stable_sort (fun a b -> compare (cost a) (cost b)) tasks
  | Topological ->
    List.stable_sort
      (fun a b -> compare (State.t_min state a) (State.t_min state b))
      tasks
  | Random rng -> Rng.shuffle rng tasks

let run_legacy ?module_reuse ~ordering state =
  let n = Resched_platform.Instance.size state.State.inst in
  let critical = Array.copy state.State.cpm.Resched_taskgraph.Cpm.critical in
  let hw_tasks =
    List.filter (fun u -> State.is_hw state u) (List.init n (fun i -> i))
  in
  let criticals, non_criticals =
    List.partition (fun u -> critical.(u)) hw_tasks
  in
  (* Critical tasks keep the deterministic efficiency order even in the
     randomized variant (Sec. VI randomizes only non-critical tasks). *)
  let criticals = sort_tasks state By_efficiency criticals in
  let non_criticals = sort_tasks state ordering non_criticals in
  List.iter (fun task -> place_critical ?module_reuse state ~task) criticals;
  List.iter (fun task -> place_non_critical state ~task) non_criticals

(* Arena-state fast path: partition/sort the hardware tasks in borrowed
   scratch arrays. The task order fed to the placement loops is
   bit-identical to [run_legacy]'s — stable insertion sorts over
   index-ordered segments reproduce [List.stable_sort], and the inlined
   Fisher-Yates over the non-critical segment replays [Rng.shuffle]'s
   exact draw sequence — so both paths build the same regions. *)
let run_scratch ?module_reuse ~ordering state scratch =
  let n = Resched_platform.Instance.size state.State.inst in
  let critical = State.sc_flags scratch in
  Array.blit state.State.cpm.Resched_taskgraph.Cpm.critical 0 critical 0 n;
  let tasks = State.sc_tasks scratch in
  let keys = State.sc_keys scratch in
  (* Criticals in [0 .. nc), non-criticals in [nc .. nc + nnc), both in
     ascending task order (what filter + partition produced). *)
  let nc = ref 0 in
  for u = 0 to n - 1 do
    if State.is_hw state u && critical.(u) then begin
      tasks.(!nc) <- u;
      incr nc
    end
  done;
  let nc = !nc in
  let nnc = ref 0 in
  for u = 0 to n - 1 do
    if State.is_hw state u && not critical.(u) then begin
      tasks.(nc + !nnc) <- u;
      incr nnc
    end
  done;
  let nnc = !nnc in
  (* Stable insertion sort ({!Resched_util.Sort}) of [base .. base+len)
     by a precomputed float key; [desc] gives the descending order
     By_efficiency wants. *)
  let sort_segment ~base ~len ~desc key_of =
    for i = base to base + len - 1 do
      keys.(i) <- key_of tasks.(i)
    done;
    Resched_util.Sort.by_float_keys tasks keys ~base ~len ~desc
  in
  let efficiency u = Cost.efficiency state.State.cost (State.impl state u) in
  let cost u = Cost.cost state.State.cost (State.impl state u) in
  sort_segment ~base:0 ~len:nc ~desc:true efficiency;
  (match ordering with
  | By_efficiency -> sort_segment ~base:nc ~len:nnc ~desc:true efficiency
  | By_cost -> sort_segment ~base:nc ~len:nnc ~desc:false cost
  | Topological ->
    sort_segment ~base:nc ~len:nnc ~desc:false (fun u ->
        float_of_int (State.t_min state u))
  | Random rng ->
    for i = nnc - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let tmp = tasks.(nc + i) in
      tasks.(nc + i) <- tasks.(nc + j);
      tasks.(nc + j) <- tmp
    done);
  for i = 0 to nc - 1 do
    place_critical ?module_reuse state ~task:tasks.(i)
  done;
  for i = nc to nc + nnc - 1 do
    place_non_critical state ~task:tasks.(i)
  done

let run ?module_reuse ~ordering state =
  match State.scratch_of state with
  | Some scratch -> run_scratch ?module_reuse ~ordering state scratch
  | None -> run_legacy ?module_reuse ~ordering state
