module Resource = Resched_fabric.Resource
module Rng = Resched_util.Rng
module Impl = Resched_platform.Impl

type ordering =
  | By_efficiency
  | By_cost
  | Topological
  | Random of Rng.t

let same_module (a : Impl.t) (b : Impl.t) =
  match (a.module_id, b.module_id) with
  | Some x, Some y -> x = y
  | _ -> false

let windows_disjoint state ~task (region : State.region) =
  List.for_all
    (fun u ->
      State.t_max state u <= State.t_min state task
      || State.t_max state task <= State.t_min state u)
    region.State.tasks

(* Neighbours of [task]'s window among the region's hosted tasks: the
   hosted task whose window ends last before [task]'s starts, and the one
   whose window starts first after [task]'s ends. *)
let window_neighbours state ~task (region : State.region) =
  let prev = ref None and next = ref None in
  List.iter
    (fun u ->
      if State.t_max state u <= State.t_min state task then begin
        match !prev with
        | Some p when State.t_max state p >= State.t_max state u -> ()
        | _ -> prev := Some u
      end
      else if State.t_min state u >= State.t_max state task then begin
        match !next with
        | Some nx when State.t_min state nx <= State.t_min state u -> ()
        | _ -> next := Some u
      end)
    region.State.tasks;
  (!prev, !next)

let reconf_gaps_ok ?(module_reuse = false) state ~task region =
  let reconf = region.State.reconf in
  let reuse a b =
    module_reuse && same_module (State.impl state a) (State.impl state b)
  in
  let prev, next = window_neighbours state ~task region in
  let before_ok =
    match prev with
    | None -> true (* the task becomes the region's first: initial
                      configuration is free *)
    | Some p ->
      reuse p task || State.t_min state task - State.t_max state p >= reconf
  in
  let after_ok =
    match next with
    | None -> true
    | Some nx ->
      reuse task nx || State.t_min state nx - State.t_max state task >= reconf
  in
  before_ok && after_ok

let fits_region state ~task (region : State.region) =
  Resource.fits (State.impl state task).Impl.res ~within:region.State.res

let region_compatible_critical ?module_reuse state ~task region =
  fits_region state ~task region
  && windows_disjoint state ~task region
  && reconf_gaps_ok ?module_reuse state ~task region

let region_compatible_non_critical state ~task region =
  fits_region state ~task region && windows_disjoint state ~task region

let lowest_bitstream regions =
  match regions with
  | [] -> None
  | r :: tl ->
    Some
      (List.fold_left
         (fun best (c : State.region) ->
           if c.State.bits < best.State.bits then c else best)
         r tl)

(* Assign one critical hardware task per the three-way rule of Sec. V-C. *)
let place_critical ?module_reuse state ~task =
  let need = (State.impl state task).Impl.res in
  let compatible =
    List.filter
      (fun r -> region_compatible_critical ?module_reuse state ~task r)
      (State.regions state)
  in
  match lowest_bitstream compatible with
  | Some region -> State.assign_to_region state ~task region
  | None ->
    if State.fits_on_fpga state need then begin
      let region = State.new_region state need in
      State.assign_to_region state ~task region
    end
    else State.switch_to_sw state ~task

(* Non-critical tasks aim at maximizing FPGA utilization: prefer a fresh
   region, then reuse, then software. *)
let place_non_critical state ~task =
  let need = (State.impl state task).Impl.res in
  if State.fits_on_fpga state need then begin
    let region = State.new_region state need in
    State.assign_to_region state ~task region
  end
  else begin
    let compatible =
      List.filter
        (fun r -> region_compatible_non_critical state ~task r)
        (State.regions state)
    in
    match lowest_bitstream compatible with
    | Some region -> State.assign_to_region state ~task region
    | None -> State.switch_to_sw state ~task
  end

let sort_tasks state ordering tasks =
  let efficiency u = Cost.efficiency state.State.cost (State.impl state u) in
  let cost u = Cost.cost state.State.cost (State.impl state u) in
  match ordering with
  | By_efficiency ->
    List.stable_sort (fun a b -> compare (efficiency b) (efficiency a)) tasks
  | By_cost -> List.stable_sort (fun a b -> compare (cost a) (cost b)) tasks
  | Topological ->
    List.stable_sort
      (fun a b -> compare (State.t_min state a) (State.t_min state b))
      tasks
  | Random rng -> Rng.shuffle rng tasks

let run ?module_reuse ~ordering state =
  let n = Resched_platform.Instance.size state.State.inst in
  let critical = Array.copy state.State.cpm.Resched_taskgraph.Cpm.critical in
  let hw_tasks =
    List.filter (fun u -> State.is_hw state u) (List.init n (fun i -> i))
  in
  let criticals, non_criticals =
    List.partition (fun u -> critical.(u)) hw_tasks
  in
  (* Critical tasks keep the deterministic efficiency order even in the
     randomized variant (Sec. VI randomizes only non-critical tasks). *)
  let criticals = sort_tasks state By_efficiency criticals in
  let non_criticals = sort_tasks state ordering non_criticals in
  List.iter (fun task -> place_critical ?module_reuse state ~task) criticals;
  List.iter (fun task -> place_non_critical state ~task) non_criticals
