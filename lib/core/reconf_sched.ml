module Graph = Resched_taskgraph.Graph

let insert_at pos x l =
  let rec go i = function
    | rest when i = pos -> x :: rest
    | [] -> [ x ]
    | hd :: tl -> hd :: go (i + 1) tl
  in
  go 0 l

(* Legal position interval for inserting [k] into [sequence] given the
   dependency-forced pairwise order: after every scheduled spec that must
   precede it, before every scheduled spec it must precede. *)
let position_bounds must_precede specs sequence k =
  let lo = ref 0 and hi = ref (List.length sequence) in
  List.iteri
    (fun pos j ->
      if must_precede specs.(j) specs.(k) then lo := Stdlib.max !lo (pos + 1);
      if must_precede specs.(k) specs.(j) then hi := Stdlib.min !hi pos)
    sequence;
  (!lo, !hi)

(* Shared skeleton of both paths. [resolve] re-times the partial sequence
   (from scratch or incrementally), [must_precede] answers the pairwise
   dependency order (fresh traversal or closure lookup) and
   [slot_position] picks the insertion point for a non-critical spec from
   the resolved times. All three are the only things the two paths do
   differently, and none of them changes the produced sequence. *)
let run_with ~resolve ~must_precede ~slot_position specs =
  let nr = Array.length specs in
  let sequence = ref [] in
  let insert ~desired k =
    let lo, hi = position_bounds must_precede specs !sequence k in
    assert (lo <= hi);
    let pos = Stdlib.max lo (Stdlib.min hi desired) in
    sequence := insert_at pos k !sequence
  in
  (* Critical reconfigurations first, lowest window start first; their
     delay hits the makespan in full. Appending in this order realizes
     the paper's "start after the last scheduled reconfiguration". *)
  let criticals = ref [] and non_criticals = ref [] in
  for k = nr - 1 downto 0 do
    if specs.(k).Timing.critical then criticals := k :: !criticals
    else non_criticals := k :: !non_criticals
  done;
  let best_remaining times remaining =
    let t_min_of k = times.Timing.task_end.(specs.(k).Timing.t_in) in
    List.fold_left
      (fun acc k ->
        match acc with
        | None -> Some k
        | Some b -> if t_min_of k < t_min_of b then Some k else acc)
      None remaining
  in
  let remaining = ref !criticals in
  while !remaining <> [] do
    let times = resolve !sequence in
    (match best_remaining times !remaining with
    | Some k ->
      insert ~desired:(List.length !sequence) k;
      remaining := List.filter (fun j -> j <> k) !remaining
    | None -> assert false)
  done;
  (* Non-critical ones slot into the earliest controller gap at or after
     their window start; the re-resolution shifts whatever follows. *)
  let remaining = ref !non_criticals in
  while !remaining <> [] do
    let times = resolve !sequence in
    match best_remaining times !remaining with
    | None -> assert false
    | Some k ->
      let t_min_k = times.Timing.task_end.(specs.(k).Timing.t_in) in
      insert ~desired:(slot_position times !sequence t_min_k) k;
      remaining := List.filter (fun j -> j <> k) !remaining
  done;
  (specs, !sequence)

(* Earliest instant >= t_min_k outside every scheduled slot, counted as a
   position, via an explicit sort of the slot list (the original
   formulation, kept as the oracle). *)
let slot_position_legacy times sequence t_min_k =
  let slots =
    List.map
      (fun j -> (times.Timing.rec_start.(j), times.Timing.rec_end.(j)))
      sequence
    |> List.sort compare
  in
  let tau =
    List.fold_left
      (fun tau (s, e) -> if tau >= s && tau < e then e else tau)
      t_min_k slots
  in
  List.fold_left
    (fun acc j -> if times.Timing.rec_start.(j) < tau then acc + 1 else acc)
    0 sequence

(* The chain edges make the sequenced slots pairwise disjoint and ordered
   on the controller, so walking [sequence] already visits them sorted by
   start: one pass both settles tau (once a slot starts past tau no later
   slot can contain it) and counts the slots left of the final tau. *)
let slot_position_sorted times sequence t_min_k =
  let tau = ref t_min_k and desired = ref 0 in
  List.iter
    (fun j ->
      let s = times.Timing.rec_start.(j) and e = times.Timing.rec_end.(j) in
      if s <= !tau then begin
        if !tau < e then tau := e;
        if s < !tau then incr desired
      end)
    sequence;
  !desired

(* ------------------------------------------------------------------ *)
(* Arena path: the same insertion algorithm as [run_with ~incremental],
   executed over reusable flat buffers — the restart kernel's
   per-iteration engine. *)

type arena = {
  a_solver : Timing.Solver.t;
  a_closure : Graph.closure_buf;
  mutable a_seq : int array;  (* the sequence under construction *)
  mutable a_rem : int array;  (* unscheduled spec indices, in order *)
}

type plan = {
  p_specs : Timing.reconf_spec array;
  p_seq : int array;
  p_len : int;
  p_times : Timing.resolved;
}

let make_arena () =
  {
    a_solver = Timing.Solver.scratch ();
    a_closure = Graph.make_closure_buf ();
    a_seq = [||];
    a_rem = [||];
  }

let slot_position_sorted_arr times seq len t_min_k =
  let tau = ref t_min_k and desired = ref 0 in
  for i = 0 to len - 1 do
    let j = seq.(i) in
    let s = times.Timing.rec_start.(j) and e = times.Timing.rec_end.(j) in
    if s <= !tau then begin
      if !tau < e then tau := e;
      if s < !tau then incr desired
    end
  done;
  !desired

let run_hot ?module_reuse arena state =
  let specs = Timing.reconf_specs ?module_reuse state in
  let nr = Array.length specs in
  if Array.length arena.a_seq < nr then begin
    let cap = Stdlib.max nr (2 * Array.length arena.a_seq) in
    arena.a_seq <- Array.make cap 0;
    arena.a_rem <- Array.make cap 0
  end;
  let closure = Graph.closure_with arena.a_closure state.State.dep in
  let solver = arena.a_solver in
  Timing.Solver.reload solver state ~reconfigs:specs;
  let seq = arena.a_seq and rem = arena.a_rem in
  let len = ref 0 in
  let insert ~desired k =
    (* [position_bounds] over the array prefix. *)
    let lo = ref 0 and hi = ref !len in
    for pos = 0 to !len - 1 do
      let j = seq.(pos) in
      if Timing.must_precede_closure closure specs.(j) specs.(k) then
        lo := Stdlib.max !lo (pos + 1);
      if Timing.must_precede_closure closure specs.(k) specs.(j) then
        hi := Stdlib.min !hi pos
    done;
    assert (!lo <= !hi);
    let pos = Stdlib.max !lo (Stdlib.min !hi desired) in
    for i = !len downto pos + 1 do
      seq.(i) <- seq.(i - 1)
    done;
    seq.(pos) <- k;
    incr len
  in
  (* One phase = [run_with]'s while-loop over one criticality class:
     remaining specs kept in ascending-index order (removal shifts), the
     argmin scan replays [best_remaining]'s first-strict-minimum rule. *)
  let phase ~critical ~slotted =
    let rcount = ref 0 in
    for k = 0 to nr - 1 do
      if specs.(k).Timing.critical = critical then begin
        rem.(!rcount) <- k;
        incr rcount
      end
    done;
    while !rcount > 0 do
      let times =
        Timing.Solver.resolve_array solver ~sequence:seq ~len:!len
      in
      let bi = ref 0 in
      let best_t =
        ref times.Timing.task_end.(specs.(rem.(0)).Timing.t_in)
      in
      for i = 1 to !rcount - 1 do
        let t = times.Timing.task_end.(specs.(rem.(i)).Timing.t_in) in
        if t < !best_t then begin
          best_t := t;
          bi := i
        end
      done;
      let k = rem.(!bi) in
      let desired =
        if slotted then slot_position_sorted_arr times seq !len !best_t
        else !len
      in
      insert ~desired k;
      for i = !bi to !rcount - 2 do
        rem.(i) <- rem.(i + 1)
      done;
      decr rcount
    done
  in
  phase ~critical:true ~slotted:false;
  phase ~critical:false ~slotted:true;
  let times = Timing.Solver.resolve_array solver ~sequence:seq ~len:!len in
  { p_specs = specs; p_seq = seq; p_len = !len; p_times = times }

let run ?module_reuse ?(incremental = true) state =
  let specs = Timing.reconf_specs ?module_reuse state in
  if incremental then begin
    let closure = Graph.closure state.State.dep in
    let solver = Timing.Solver.create state ~reconfigs:specs in
    run_with
      ~resolve:(fun sequence -> Timing.Solver.resolve solver ~sequence)
      ~must_precede:(Timing.must_precede_closure closure)
      ~slot_position:slot_position_sorted specs
  end
  else
    run_with
      ~resolve:(fun sequence -> Timing.resolve state ~reconfigs:specs ~sequence)
      ~must_precede:(Timing.must_precede state)
      ~slot_position:slot_position_legacy specs
