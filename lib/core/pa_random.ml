module Rng = Resched_util.Rng
module Domain_pool = Resched_util.Domain_pool
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch

type trace_point = { elapsed : float; iteration : int; makespan : int }

type outcome = {
  schedule : Schedule.t option;
  iterations : int;
  trace : trace_point list;
  minor_words : float;
}

type kernel = [ `Soa | `Boxed ]

(* ------------------------------------------------------------------ *)
(* Shared search state                                                 *)

(* Workers race on [best_makespan] (the skip bound consulted before every
   floorplan check) and publish the matching schedule under [lock]. A
   worker only publishes after winning the compare-and-set on the
   makespan, so the guard in [publish] merely orders near-simultaneous
   winners. *)
type shared = {
  best_makespan : int Atomic.t;
  lock : Mutex.t;
  mutable best : Schedule.t option;
}

let make_shared () =
  { best_makespan = Atomic.make max_int; lock = Mutex.create (); best = None }

let publish shared sched =
  Domain_pool.with_lock shared.lock (fun () ->
      match shared.best with
      | Some cur when cur.Schedule.makespan <= sched.Schedule.makespan -> ()
      | Some _ | None -> shared.best <- Some sched)

(* Claim an improvement: true iff [ms] strictly lowered the shared bound.
   Losing the race to a better concurrent candidate discards ours. *)
let rec claim shared ms =
  let cur = Atomic.get shared.best_makespan in
  if ms >= cur then false
  else if Atomic.compare_and_set shared.best_makespan cur ms then true
  else claim shared ms

(* ------------------------------------------------------------------ *)
(* One restart stream (Algorithm 1's loop body)                        *)

let check_feasible ~config ~cache device needs =
  if Array.length needs = 0 then Some [||]
  else begin
    (* An explicit [?cache] argument wins; otherwise fall back to the one
       embedded in the PA config (if any). *)
    let cache =
      match cache with Some _ -> cache | None -> config.Pa.floorplan_cache
    in
    let report =
      match cache with
      | Some cache ->
        Fp_cache.check cache ~engine:config.Pa.floorplan_engine
          ?node_limit:config.Pa.floorplan_node_limit device needs
      | None ->
        Floorplanner.check ~engine:config.Pa.floorplan_engine
          ?node_limit:config.Pa.floorplan_node_limit device needs
    in
    match report.Floorplanner.verdict with
    | Floorplanner.Feasible placements -> Some placements
    | Floorplanner.Infeasible | Floorplanner.Unknown -> None
  end

type worker_result = {
  w_iterations : int;
  w_trace : trace_point list;  (** newest first *)
  w_minor_words : float;
}

(* ------------------------------------------------------------------ *)
(* Per-domain restart arenas, reused across calls                      *)

(* A resident pool worker serves a whole batch of PA-R runs; rebuilding
   the restart arena on every call rediscovers the same per-scale memo
   entries from scratch. Each domain keeps its few most recent arenas,
   keyed by physical instance identity (an [Instance.t] is immutable and
   interned by the caller, so [==] is the right notion of "same
   instance"). Arena reuse is bit-identical by construction: the memo
   returns exactly what recomputation would, and [State.reset] clears
   iteration state (property-tested in test_scheduler). The cap bounds
   how much a long-lived domain roots against the GC — it is sized for
   the batch engine, whose slices interleave several instances per
   domain. *)
let context_cache_cap = 16

let context_cache : (Instance.t * Pa.Context.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let get_context inst =
  let cache = Domain.DLS.get context_cache in
  match List.find_opt (fun (i, _) -> i == inst) !cache with
  | Some (_, ctx) ->
    cache := (inst, ctx) :: List.filter (fun (i, _) -> i != inst) !cache;
    ctx
  | None ->
    let ctx = Pa.Context.create inst in
    let kept = List.filteri (fun k _ -> k < context_cache_cap - 1) !cache in
    cache := (inst, ctx) :: kept;
    ctx

(* The adaptive virtual scale is quantized onto the [shrink_factor^k]
   lattice (k in [0 .. max_shrink_exp]); only the integer exponent moves.
   The previous continuous policy ([scale /. sqrt shrink] on success)
   drifted through floats that never repeated, so neither the per-scale
   restart memo ({!Pa.Context}) nor the floorplan cache keyed off the
   resulting region sets could ever hit. See DESIGN.md. *)
let max_shrink_exp = 6

(* ------------------------------------------------------------------ *)
(* A course: one resumable restart stream                              *)

(* The loop body of the old inline worker, reified so the same stream
   can run to completion on one domain (run/run_parallel) or in
   interleaved slices across domains (Batch.run) with bit-identical
   results: everything the stream depends on — its RNG, its adaptive
   shrink exponent, its iteration count — lives here, while the restart
   arena stays domain-local and is re-fetched per slice. *)
module Course = struct
  type t = {
    crs_inst : Instance.t;
    crs_config : Pa.config;
    crs_cache : Fp_cache.t option;
    crs_incremental : bool;
    crs_kernel : kernel;
    crs_rng : Rng.t;
    crs_shared : shared;
    crs_start : float;
    crs_deadline : float;
    crs_min_iterations : int;
    crs_cancel : (unit -> bool) option;
    crs_lattice : float array;
    mutable crs_shrink_exp : int;
    mutable crs_iterations : int;
    mutable crs_trace : trace_point list;  (* newest first *)
    mutable crs_minor_words : float;
    mutable crs_done : bool;
  }

  let make ?(config = Pa.default_config) ?cache ?(incremental = true)
      ?(kernel = `Soa) ?cancel ~shared ~rng ~start ~min_iterations
      ~budget_seconds inst =
    {
      crs_inst = inst;
      crs_config = config;
      crs_cache = cache;
      crs_incremental = incremental;
      crs_kernel = kernel;
      crs_rng = rng;
      crs_shared = shared;
      crs_start = start;
      crs_deadline = start +. budget_seconds;
      crs_min_iterations = min_iterations;
      crs_cancel = cancel;
      (* Virtual FPGA-resource scale for the inner doSchedule. Algorithm
         1 never shrinks, but when the region definition saturates the
         device no random order yields a floorplannable region set;
         adapting the scale on floorplan failures (and probing back up
         on successes) keeps the search inside the packable envelope.
         See DESIGN.md. *)
      crs_lattice =
        Array.init (max_shrink_exp + 1) (fun k ->
            config.Pa.shrink_factor ** float_of_int k);
      crs_shrink_exp = 0;
      crs_iterations = 0;
      crs_trace = [];
      crs_minor_words = 0.;
      crs_done = false;
    }

  let create ?config ?cache ?incremental ?kernel ?start ?cancel ~seed
      ~min_iterations ~budget_seconds inst =
    let start =
      match start with Some s -> s | None -> Unix.gettimeofday ()
    in
    make ?config ?cache ?incremental ?kernel ?cancel ~shared:(make_shared ())
      ~rng:(Rng.create seed) ~start ~min_iterations ~budget_seconds inst

  (* Does this course run the struct-of-arrays kernel over a context
     arena? [`Boxed] (and [incremental:false]) run the boxed oracle:
     a fresh scratch-less state and a boxed schedule every iteration. *)
  let uses_arena c = c.crs_incremental && c.crs_kernel = `Soa

  let iterate c ~ctx ~now =
    let config =
      {
        c.crs_config with
        Pa.ordering = Regions_define.Random (Rng.split c.crs_rng);
      }
    in
    let scale = c.crs_lattice.(c.crs_shrink_exp) in
    let device = c.crs_inst.Instance.arch.Arch.device in
    let shared = c.crs_shared in
    let improve ms ~needs ~materialize =
      match check_feasible ~config ~cache:c.crs_cache device needs with
      | None ->
        c.crs_shrink_exp <- Stdlib.min max_shrink_exp (c.crs_shrink_exp + 1)
      | Some placements ->
        c.crs_shrink_exp <- Stdlib.max 0 (c.crs_shrink_exp - 1);
        if claim shared ms then begin
          publish shared
            { (materialize ()) with Schedule.floorplan = Some placements };
          c.crs_trace <-
            {
              elapsed = now -. c.crs_start;
              iteration = c.crs_iterations;
              makespan = ms;
            }
            :: c.crs_trace
        end
    in
    match ctx with
    | Some ctx ->
      let cand =
        Pa.schedule_candidate ~config ~resource_scale:scale ~ctx c.crs_inst
      in
      let ms = Pa.candidate_makespan cand in
      if ms < Atomic.get shared.best_makespan then
        improve ms ~needs:(Pa.candidate_needs cand) ~materialize:(fun () ->
            Pa.materialize cand)
    | None ->
      let candidate =
        Pa.schedule_once ~config ~resource_scale:scale
          ~incremental:c.crs_incremental c.crs_inst
      in
      let ms = candidate.Schedule.makespan in
      if ms < Atomic.get shared.best_makespan then
        improve ms
          ~needs:
            (Array.map
               (fun (r : Schedule.region) -> r.Schedule.res)
               candidate.Schedule.regions)
          ~materialize:(fun () -> candidate)

  let run_slice c ~max_iterations =
    (* Cooperative cancellation: polled once per slice, never inside the
       iteration loop, so a cancelled stream stops at the next slice
       boundary (the serve layer's "deadline + one slice" contract) while
       the hot path stays clock-read-only. A course that never gets
       cancelled executes the exact iteration stream of one without a
       cancel hook. *)
    if
      (not c.crs_done)
      && (match c.crs_cancel with Some f -> f () | None -> false)
    then c.crs_done <- true;
    if c.crs_done || max_iterations <= 0 then 0
    else begin
      (* One restart arena per worker domain: contexts are not
         thread-safe, and a domain-private arena also keeps the
         iteration's working set out of the minor heap (OCaml 5 minor
         collections are stop-the-world rendezvous across domains, so
         per-domain allocation churn taxes every other worker). Fetched
         per slice through the domain-local cache, so the stream can
         migrate between domains while each domain reuses warm
         arenas. *)
      let ctx = if uses_arena c then Some (get_context c.crs_inst) else None in
      let words0 = Gc.minor_words () in
      let executed = ref 0 in
      let running = ref true in
      while !running && !executed < max_iterations do
        (* One clock read per iteration: it decides the deadline and
           stamps any trace point the iteration produces. *)
        let now = Unix.gettimeofday () in
        if
          c.crs_iterations >= c.crs_min_iterations && now >= c.crs_deadline
        then begin
          c.crs_done <- true;
          running := false
        end
        else begin
          incr executed;
          c.crs_iterations <- c.crs_iterations + 1;
          iterate c ~ctx ~now
        end
      done;
      c.crs_minor_words <-
        c.crs_minor_words +. (Gc.minor_words () -. words0);
      !executed
    end

  let finished c = c.crs_done
  let iterations c = c.crs_iterations
  let minor_words c = c.crs_minor_words
  let instance c = c.crs_inst

  let outcome c =
    {
      schedule = c.crs_shared.best;
      iterations = c.crs_iterations;
      trace = List.rev c.crs_trace;
      minor_words = c.crs_minor_words;
    }
end

(* Run one course to completion on the calling domain. *)
let exhaust (c : Course.t) =
  while not c.Course.crs_done do
    ignore (Course.run_slice c ~max_iterations:max_int : int)
  done;
  {
    w_iterations = c.Course.crs_iterations;
    w_trace = c.Course.crs_trace;
    w_minor_words = c.Course.crs_minor_words;
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let run ?(config = Pa.default_config) ?(seed = 1) ?(min_iterations = 1) ?cache
    ?(incremental = true) ?kernel ~budget_seconds inst =
  let start = Unix.gettimeofday () in
  let shared = make_shared () in
  let course =
    Course.make ~config ?cache ~incremental ?kernel ~shared
      ~rng:(Rng.create seed) ~start ~min_iterations ~budget_seconds inst
  in
  let r = exhaust course in
  {
    schedule = shared.best;
    iterations = r.w_iterations;
    trace = List.rev r.w_trace;
    minor_words = r.w_minor_words;
  }

(* Per-worker trace points already carry globally-improving makespans
   (each passed [claim]); ordering the union by elapsed time and keeping
   the running minimum yields one globally-ordered improving trace even
   when stamps and claims interleave across workers. *)
let merge_traces results =
  let all = List.concat_map (fun r -> r.w_trace) (Array.to_list results) in
  let by_time =
    List.sort (fun a b -> Float.compare a.elapsed b.elapsed) all
  in
  let _, rev =
    List.fold_left
      (fun (best, acc) p ->
        if p.makespan < best then (p.makespan, p :: acc) else (best, acc))
      (max_int, []) by_time
  in
  List.rev rev

let run_parallel ?(config = Pa.default_config) ?(seed = 1) ?(min_iterations = 1)
    ?jobs ?pool ?cache ?(incremental = true) ?kernel ~budget_seconds inst =
  let jobs =
    match (pool, jobs) with
    | Some p, Some j ->
      if j <> Domain_pool.Pool.jobs p then
        invalid_arg
          (Printf.sprintf
             "Pa_random.run_parallel: jobs=%d but the pool has %d worker(s)" j
             (Domain_pool.Pool.jobs p));
      j
    | Some p, None -> Domain_pool.Pool.jobs p
    | None, Some j when j >= 1 -> j
    | None, Some j ->
      invalid_arg (Printf.sprintf "Pa_random.run_parallel: jobs=%d" j)
    | None, None -> Domain_pool.available_cores ()
  in
  if jobs = 1 then
    run ~config ~seed ~min_iterations ?cache ~incremental ?kernel
      ~budget_seconds inst
  else begin
    let start = Unix.gettimeofday () in
    let shared = make_shared () in
    (* Worker 0 replays the sequential stream ([Rng.create seed]); extra
       workers draw independent SplitMix64 streams from a decorrelated
       root so no worker shares worker 0's per-iteration split sequence. *)
    let root = Rng.create (seed lxor 0x2545F491) in
    let rngs =
      Array.init jobs (fun i ->
          if i = 0 then Rng.create seed else Rng.split root)
    in
    let min_per_worker = (min_iterations + jobs - 1) / jobs in
    let job i =
      exhaust
        (Course.make ~config ?cache ~incremental ?kernel ~shared
           ~rng:rngs.(i) ~start ~min_iterations:min_per_worker
           ~budget_seconds inst)
    in
    let results =
      match pool with
      | Some p -> Domain_pool.Pool.map p job
      | None -> Domain_pool.run ~jobs job
    in
    let iterations =
      Array.fold_left (fun acc r -> acc + r.w_iterations) 0 results
    in
    let minor_words =
      Array.fold_left (fun acc r -> acc +. r.w_minor_words) 0. results
    in
    { schedule = shared.best; iterations; trace = merge_traces results;
      minor_words }
  end
