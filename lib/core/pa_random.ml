module Rng = Resched_util.Rng
module Domain_pool = Resched_util.Domain_pool
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch

type trace_point = { elapsed : float; iteration : int; makespan : int }

type outcome = {
  schedule : Schedule.t option;
  iterations : int;
  trace : trace_point list;
}

(* ------------------------------------------------------------------ *)
(* Shared search state                                                 *)

(* Workers race on [best_makespan] (the skip bound consulted before every
   floorplan check) and publish the matching schedule under [lock]. A
   worker only publishes after winning the compare-and-set on the
   makespan, so the guard in [publish] merely orders near-simultaneous
   winners. *)
type shared = {
  best_makespan : int Atomic.t;
  lock : Mutex.t;
  mutable best : Schedule.t option;
}

let make_shared () =
  { best_makespan = Atomic.make max_int; lock = Mutex.create (); best = None }

let publish shared sched =
  Domain_pool.with_lock shared.lock (fun () ->
      match shared.best with
      | Some cur when cur.Schedule.makespan <= sched.Schedule.makespan -> ()
      | Some _ | None -> shared.best <- Some sched)

(* Claim an improvement: true iff [ms] strictly lowered the shared bound.
   Losing the race to a better concurrent candidate discards ours. *)
let rec claim shared ms =
  let cur = Atomic.get shared.best_makespan in
  if ms >= cur then false
  else if Atomic.compare_and_set shared.best_makespan cur ms then true
  else claim shared ms

(* ------------------------------------------------------------------ *)
(* One restart stream (Algorithm 1's loop body)                        *)

let check_feasible ~config ~cache device needs =
  if Array.length needs = 0 then Some [||]
  else begin
    (* An explicit [?cache] argument wins; otherwise fall back to the one
       embedded in the PA config (if any). *)
    let cache =
      match cache with Some _ -> cache | None -> config.Pa.floorplan_cache
    in
    let report =
      match cache with
      | Some cache ->
        Fp_cache.check cache ~engine:config.Pa.floorplan_engine
          ?node_limit:config.Pa.floorplan_node_limit device needs
      | None ->
        Floorplanner.check ~engine:config.Pa.floorplan_engine
          ?node_limit:config.Pa.floorplan_node_limit device needs
    in
    match report.Floorplanner.verdict with
    | Floorplanner.Feasible placements -> Some placements
    | Floorplanner.Infeasible | Floorplanner.Unknown -> None
  end

type worker_result = {
  w_iterations : int;
  w_trace : trace_point list;  (** newest first *)
}

(* ------------------------------------------------------------------ *)
(* Per-domain restart arenas, reused across calls                      *)

(* A resident pool worker serves a whole batch of PA-R runs; rebuilding
   the restart arena on every call rediscovers the same per-scale memo
   entries from scratch. Each domain keeps its few most recent arenas,
   keyed by physical instance identity (an [Instance.t] is immutable and
   interned by the caller, so [==] is the right notion of "same
   instance"). Arena reuse is bit-identical by construction: the memo
   returns exactly what recomputation would, and [State.reset] clears
   iteration state (property-tested in test_scheduler). The cap bounds
   how much a long-lived domain roots against the GC. *)
let context_cache_cap = 4

let context_cache : (Instance.t * Pa.Context.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let get_context inst =
  let cache = Domain.DLS.get context_cache in
  match List.find_opt (fun (i, _) -> i == inst) !cache with
  | Some (_, ctx) ->
    cache := (inst, ctx) :: List.filter (fun (i, _) -> i != inst) !cache;
    ctx
  | None ->
    let ctx = Pa.Context.create inst in
    let kept = List.filteri (fun k _ -> k < context_cache_cap - 1) !cache in
    cache := (inst, ctx) :: kept;
    ctx

(* The adaptive virtual scale is quantized onto the [shrink_factor^k]
   lattice (k in [0 .. max_shrink_exp]); only the integer exponent moves.
   The previous continuous policy ([scale /. sqrt shrink] on success)
   drifted through floats that never repeated, so neither the per-scale
   restart memo ({!Pa.Context}) nor the floorplan cache keyed off the
   resulting region sets could ever hit. See DESIGN.md. *)
let max_shrink_exp = 6

let worker ~config ~cache ~incremental ~rng ~start ~deadline ~min_iterations
    ~shared inst =
  let device = inst.Instance.arch.Arch.device in
  let iterations = ref 0 in
  let trace = ref [] in
  (* One restart arena per worker domain: contexts are not thread-safe,
     and a domain-private arena also keeps the iteration's working set
     out of the minor heap (OCaml 5 minor collections are stop-the-world
     rendezvous across domains, so per-domain allocation churn taxes
     every other worker). Fetched through the domain-local cache so a
     resident pool worker reuses a warm arena across a batch of runs. *)
  let ctx = if incremental then Some (get_context inst) else None in
  (* Virtual FPGA-resource scale for the inner doSchedule. Algorithm 1
     never shrinks, but when the region definition saturates the device
     no random order yields a floorplannable region set; adapting the
     scale on floorplan failures (and probing back up on successes)
     keeps the search inside the packable envelope. See DESIGN.md. *)
  let lattice =
    Array.init (max_shrink_exp + 1) (fun k ->
        config.Pa.shrink_factor ** float_of_int k)
  in
  let shrink_exp = ref 0 in
  let running = ref true in
  while !running do
    (* One clock read per iteration: it decides the deadline and stamps
       any trace point the iteration produces. *)
    let now = Unix.gettimeofday () in
    if !iterations >= min_iterations && now >= deadline then running := false
    else begin
      incr iterations;
      let config =
        { config with Pa.ordering = Regions_define.Random (Rng.split rng) }
      in
      let candidate =
        Pa.schedule_once ~config ~resource_scale:lattice.(!shrink_exp) ?ctx
          ~incremental inst
      in
      let ms = candidate.Schedule.makespan in
      if ms < Atomic.get shared.best_makespan then begin
        let needs =
          Array.map
            (fun (r : Schedule.region) -> r.Schedule.res)
            candidate.Schedule.regions
        in
        match check_feasible ~config ~cache device needs with
        | None -> shrink_exp := Stdlib.min max_shrink_exp (!shrink_exp + 1)
        | Some placements ->
          shrink_exp := Stdlib.max 0 (!shrink_exp - 1);
          if claim shared ms then begin
            publish shared
              { candidate with Schedule.floorplan = Some placements };
            trace :=
              { elapsed = now -. start; iteration = !iterations; makespan = ms }
              :: !trace
          end
      end
    end
  done;
  { w_iterations = !iterations; w_trace = !trace }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let run ?(config = Pa.default_config) ?(seed = 1) ?(min_iterations = 1) ?cache
    ?(incremental = true) ~budget_seconds inst =
  let start = Unix.gettimeofday () in
  let shared = make_shared () in
  let r =
    worker ~config ~cache ~incremental ~rng:(Rng.create seed) ~start
      ~deadline:(start +. budget_seconds) ~min_iterations ~shared inst
  in
  { schedule = shared.best; iterations = r.w_iterations;
    trace = List.rev r.w_trace }

(* Per-worker trace points already carry globally-improving makespans
   (each passed [claim]); ordering the union by elapsed time and keeping
   the running minimum yields one globally-ordered improving trace even
   when stamps and claims interleave across workers. *)
let merge_traces results =
  let all = List.concat_map (fun r -> r.w_trace) (Array.to_list results) in
  let by_time =
    List.sort (fun a b -> Float.compare a.elapsed b.elapsed) all
  in
  let _, rev =
    List.fold_left
      (fun (best, acc) p ->
        if p.makespan < best then (p.makespan, p :: acc) else (best, acc))
      (max_int, []) by_time
  in
  List.rev rev

let run_parallel ?(config = Pa.default_config) ?(seed = 1) ?(min_iterations = 1)
    ?jobs ?pool ?cache ?(incremental = true) ~budget_seconds inst =
  let jobs =
    match (pool, jobs) with
    | Some p, Some j ->
      if j <> Domain_pool.Pool.jobs p then
        invalid_arg
          (Printf.sprintf
             "Pa_random.run_parallel: jobs=%d but the pool has %d worker(s)" j
             (Domain_pool.Pool.jobs p));
      j
    | Some p, None -> Domain_pool.Pool.jobs p
    | None, Some j when j >= 1 -> j
    | None, Some j ->
      invalid_arg (Printf.sprintf "Pa_random.run_parallel: jobs=%d" j)
    | None, None -> Domain_pool.available_cores ()
  in
  if jobs = 1 then
    run ~config ~seed ~min_iterations ?cache ~incremental ~budget_seconds inst
  else begin
    let start = Unix.gettimeofday () in
    let deadline = start +. budget_seconds in
    let shared = make_shared () in
    (* Worker 0 replays the sequential stream ([Rng.create seed]); extra
       workers draw independent SplitMix64 streams from a decorrelated
       root so no worker shares worker 0's per-iteration split sequence. *)
    let root = Rng.create (seed lxor 0x2545F491) in
    let rngs =
      Array.init jobs (fun i ->
          if i = 0 then Rng.create seed else Rng.split root)
    in
    let min_per_worker = (min_iterations + jobs - 1) / jobs in
    let job i =
      worker ~config ~cache ~incremental ~rng:rngs.(i) ~start ~deadline
        ~min_iterations:min_per_worker ~shared inst
    in
    let results =
      match pool with
      | Some p -> Domain_pool.Pool.map p job
      | None -> Domain_pool.run ~jobs job
    in
    let iterations =
      Array.fold_left (fun acc r -> acc + r.w_iterations) 0 results
    in
    { schedule = shared.best; iterations; trace = merge_traces results }
  end
