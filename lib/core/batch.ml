module Domain_pool = Resched_util.Domain_pool
module Fp_cache = Resched_floorplan.Fp_cache
module Instance = Resched_platform.Instance

type request = {
  instance : Instance.t;
  seed : int;
  min_iterations : int;
  budget_seconds : float;
  cancel : (unit -> bool) option;
}

let request ?(seed = 1) ?(min_iterations = 1) ?(budget_seconds = 0.) ?cancel
    instance =
  { instance; seed; min_iterations; budget_seconds; cancel }

type stats = {
  jobs : int;
  slice : int;
  wall_seconds : float;
  total_iterations : int;
  total_slices : int;
  total_minor_words : float;
}

(* The shared course queue. A worker pops a course, advances it by one
   slice on its own domain, and gives it back: unfinished courses rejoin
   the tail (so every ready course gets serviced before any course gets
   a second slice — round-robin across instances), finished ones retire.
   Workers block on the condition variable rather than spin: a queue
   that is momentarily empty while other workers hold the last
   unfinished courses must not look like termination. *)
type queue = {
  q_lock : Mutex.t;
  q_cond : Condition.t;
  q_ready : Pa_random.Course.t Queue.t;
  mutable q_remaining : int;  (* unfinished courses, guarded by q_lock *)
}

let pop q =
  Mutex.lock q.q_lock;
  let rec wait () =
    if q.q_remaining = 0 then None
    else if Queue.is_empty q.q_ready then begin
      Condition.wait q.q_cond q.q_lock;
      wait ()
    end
    else Some (Queue.pop q.q_ready)
  in
  let r = wait () in
  Mutex.unlock q.q_lock;
  r

let give_back q course =
  Mutex.lock q.q_lock;
  if Pa_random.Course.finished course then begin
    q.q_remaining <- q.q_remaining - 1;
    if q.q_remaining = 0 then Condition.broadcast q.q_cond
  end
  else begin
    Queue.push course q.q_ready;
    Condition.signal q.q_cond
  end;
  Mutex.unlock q.q_lock

type worker_stats = { ws_slices : int }

let worker_loop queue ~slice =
  let slices = ref 0 in
  let rec loop () =
    match pop queue with
    | None -> ()
    | Some course ->
      ignore (Pa_random.Course.run_slice course ~max_iterations:slice : int);
      incr slices;
      give_back queue course;
      loop ()
  in
  loop ();
  { ws_slices = !slices }

let default_slice ~jobs requests =
  (* Small enough that a short batch still interleaves across every
     worker, large enough to amortize the per-slice arena fetch and
     clock reads. With N total requested iterations over [jobs] workers,
     ~4 slices per worker-share keeps the tail balanced. *)
  let total =
    Array.fold_left (fun acc r -> acc + r.min_iterations) 0 requests
  in
  Stdlib.max 1 (Stdlib.min 32 (total / (4 * jobs) + 1))

let run ?config ?cache ?incremental ?kernel ?jobs ?pool ?slice requests =
  let jobs =
    match (pool, jobs) with
    | Some p, Some j ->
      if j <> Domain_pool.Pool.jobs p then
        invalid_arg
          (Printf.sprintf
             "Batch.run: jobs=%d but the pool has %d worker(s)" j
             (Domain_pool.Pool.jobs p));
      j
    | Some p, None -> Domain_pool.Pool.jobs p
    | None, Some j when j >= 1 -> j
    | None, Some j -> invalid_arg (Printf.sprintf "Batch.run: jobs=%d" j)
    | None, None -> Domain_pool.available_cores ()
  in
  let slice =
    match slice with
    | Some s when s >= 1 -> s
    | Some s -> invalid_arg (Printf.sprintf "Batch.run: slice=%d" s)
    | None -> default_slice ~jobs requests
  in
  let start = Unix.gettimeofday () in
  (* One course per request, each with its own RNG and its own incumbent:
     whatever slice interleaving the queue produces, every instance's
     stream consumes exactly the draws a sequential [Pa_random.run] with
     the same seed would, and never sees another instance's incumbent —
     per-instance results are bit-identical by construction. The common
     [start] anchors every course's wall-clock budget at batch launch. *)
  let courses =
    Array.map
      (fun r ->
        Pa_random.Course.create ?config ?cache ?incremental ?kernel ~start
          ?cancel:r.cancel ~seed:r.seed ~min_iterations:r.min_iterations
          ~budget_seconds:r.budget_seconds r.instance)
      requests
  in
  let queue =
    {
      q_lock = Mutex.create ();
      q_cond = Condition.create ();
      q_ready = Queue.create ();
      q_remaining = Array.length courses;
    }
  in
  Array.iter (fun c -> Queue.push c queue.q_ready) courses;
  let worker _i = worker_loop queue ~slice in
  let worker_stats =
    if Array.length courses = 0 then [||]
    else if jobs = 1 then [| worker 0 |]
    else
      match pool with
      | Some p -> Domain_pool.Pool.map p worker
      | None -> Domain_pool.run ~jobs worker
  in
  let wall_seconds = Unix.gettimeofday () -. start in
  let outcomes = Array.map Pa_random.Course.outcome courses in
  let total_iterations =
    Array.fold_left
      (fun acc (o : Pa_random.outcome) -> acc + o.Pa_random.iterations)
      0 outcomes
  in
  let total_minor_words =
    Array.fold_left
      (fun acc (o : Pa_random.outcome) -> acc +. o.Pa_random.minor_words)
      0. outcomes
  in
  let total_slices =
    Array.fold_left (fun acc w -> acc + w.ws_slices) 0 worker_stats
  in
  ( outcomes,
    {
      jobs;
      slice;
      wall_seconds;
      total_iterations;
      total_slices;
      total_minor_words;
    } )
