module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Cpm = Resched_taskgraph.Cpm
module Resource = Resched_fabric.Resource
module Floorplanner = Resched_floorplan.Floorplanner

let src = Logs.Src.create "resched.pa" ~doc:"PA scheduler pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

module Context = struct
  (* Everything steps 1-2 derive from (instance, resource_scale) alone:
     the scaled capacity, the cost weights, the initial implementation
     selection and the base CPM windows. One entry per scale visited by
     the restart loop — the adaptive scale is quantized onto the
     [shrink_factor^k] lattice precisely so this table (and the
     floorplan cache downstream) sees repeats. Each entry also owns a
     recyclable arena {!State.t}: [State.reset] rewinds it between
     iterations instead of reallocating every array and adjacency
     list. *)
  type entry = {
    e_max_res : Resource.t;
    e_cost : Cost.t;
    e_impl_of : int array;
    e_base_cpm : Cpm.t;
    mutable e_state : State.t option;
  }

  type t = {
    c_inst : Instance.t;
    entries : (float, entry) Hashtbl.t;
    c_arena : Reconf_sched.arena;
        (* step-7 buffers (solver, closure, sequence), shared by every
           scale: one run_hot at a time per context *)
  }

  let create inst =
    {
      c_inst = inst;
      entries = Hashtbl.create 8;
      c_arena = Reconf_sched.make_arena ();
    }

  let entry ctx ~resource_scale =
    match Hashtbl.find_opt ctx.entries resource_scale with
    | Some e -> e
    | None ->
      let inst = ctx.c_inst in
      let max_res =
        Resource.scale (Arch.max_res inst.Instance.arch) resource_scale
      in
      let cost = Cost.make inst ~max_res in
      let impl_of = Impl_select.run ~cost inst ~max_res in
      let base_cpm =
        let durations =
          Array.init (Instance.size inst) (fun u ->
              (Instance.impl inst ~task:u ~idx:impl_of.(u))
                .Resched_platform.Impl.time)
        in
        Cpm.compute inst.Instance.graph ~durations
      in
      let e = { e_max_res = max_res; e_cost = cost; e_impl_of = impl_of;
                e_base_cpm = base_cpm; e_state = None }
      in
      Hashtbl.add ctx.entries resource_scale e;
      e

  (* A state ready to run steps 3-7, recycled when the entry has one. *)
  let state ctx ~resource_scale =
    let e = entry ctx ~resource_scale in
    match e.e_state with
    | Some s ->
      State.reset s ~impl_of:e.e_impl_of ~base_cpm:e.e_base_cpm;
      s
    | None ->
      let s =
        State.create ctx.c_inst ~resource_scale ~cost:e.e_cost
          ~base_cpm:e.e_base_cpm ~scratch:true ~impl_of:e.e_impl_of ()
      in
      e.e_state <- Some s;
      s
end

type config = {
  ordering : Regions_define.ordering;
  module_reuse : bool;
  floorplan_engine : Floorplanner.engine;
  floorplan_node_limit : int option;
  floorplan_cache : Resched_floorplan.Fp_cache.t option;
  max_attempts : int;
  shrink_factor : float;
}

let default_config =
  {
    ordering = Regions_define.By_efficiency;
    module_reuse = false;
    floorplan_engine = Floorplanner.Backtracking;
    floorplan_node_limit = None;
    floorplan_cache = None;
    max_attempts = 8;
    shrink_factor = 0.9;
  }

type stats = {
  attempts : int;
  scheduling_seconds : float;
  floorplanning_seconds : float;
}

(* Region tasks ordered by resolved start: a stable insertion sort
   ({!Resched_util.Sort}) over a borrowed (or, for plain states, local)
   scratch array replaces the old per-region [List.sort] — same order
   (the stdlib's [List.sort] is the stable merge sort), no per-call sort
   allocations beyond the result list the [Schedule.region] needs
   anyway. *)
let ordered_tasks state (task_start : int array) (r : State.region) =
  let k = List.length r.State.tasks in
  let arr =
    match State.scratch_of state with
    | Some s when k > 0 -> State.sc_tasks s (* free: the pipeline is done *)
    | _ -> Array.make (Stdlib.max 1 k) 0
  in
  let i = ref 0 in
  List.iter
    (fun u ->
      arr.(!i) <- u;
      incr i)
    r.State.tasks;
  Resched_util.Sort.by_int_key arr ~base:0 ~len:k ~key:(fun v ->
      task_start.(v));
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (arr.(i) :: acc)
  in
  build (k - 1) []

(* Schedule construction shared by the from-scratch path and the arena
   path: everything comes from the state plus already-resolved times and
   an explicit reconfiguration order. *)
let build_schedule ~module_reuse ~resource_scale state specs
    (times : Timing.resolved) ~seq_iter =
  let n = Instance.size state.State.inst in
  let slots =
    Array.init n (fun u ->
        let placement =
          if state.State.region_of.(u) >= 0 then
            Schedule.On_region state.State.region_of.(u)
          else Schedule.On_processor (Stdlib.max 0 state.State.processor_of.(u))
        in
        {
          Schedule.impl_idx = state.State.impl_of.(u);
          placement;
          start_ = times.Timing.task_start.(u);
          end_ = times.Timing.task_end.(u);
        })
  in
  let regions =
    Array.map
      (fun (r : State.region) ->
        {
          Schedule.res = r.State.res;
          reconf_ticks = r.State.reconf;
          tasks = ordered_tasks state times.Timing.task_start r;
        })
      (State.region_list state)
  in
  let reconfigurations =
    seq_iter (fun k ->
        let spec : Timing.reconf_spec = specs.(k) in
        {
          Schedule.region = spec.Timing.region_id;
          t_in = spec.Timing.t_in;
          t_out = spec.Timing.t_out;
          r_start = times.Timing.rec_start.(k);
          r_end = times.Timing.rec_end.(k);
        })
  in
  {
    Schedule.instance = state.State.inst;
    regions;
    slots;
    reconfigurations;
    makespan = times.Timing.makespan;
    floorplan = None;
    module_reuse;
    resource_scale;
  }

let schedule_of_state ?(module_reuse = false) ?(resource_scale = 1.0) state
    specs sequence =
  let resolved = Timing.resolve state ~reconfigs:specs ~sequence in
  build_schedule ~module_reuse ~resource_scale state specs resolved
    ~seq_iter:(fun f -> List.map f sequence)

let count_hw state =
  let n = Instance.size state.State.inst in
  let acc = ref 0 in
  for u = 0 to n - 1 do
    if State.is_hw state u then incr acc
  done;
  !acc

type candidate = {
  cd_state : State.t;
  cd_plan : Reconf_sched.plan;
  cd_module_reuse : bool;
  cd_resource_scale : float;
}

let schedule_candidate ?(config = default_config) ?(resource_scale = 1.0)
    ~ctx inst =
  if not (inst == ctx.Context.c_inst) then
    invalid_arg "Pa.schedule_candidate: context belongs to another instance";
  let state = Context.state ctx ~resource_scale in
  Regions_define.run ~module_reuse:config.module_reuse
    ~ordering:config.ordering state;
  Sw_balance.run state;
  Sw_map.run ~incremental:true state;
  let plan =
    Reconf_sched.run_hot ~module_reuse:config.module_reuse
      ctx.Context.c_arena state
  in
  {
    cd_state = state;
    cd_plan = plan;
    cd_module_reuse = config.module_reuse;
    cd_resource_scale = resource_scale;
  }

let candidate_makespan c =
  c.cd_plan.Reconf_sched.p_times.Timing.makespan

let candidate_needs c =
  let state = c.cd_state in
  Array.init (State.region_count state) (fun i ->
      (State.nth_region state i).State.res)

let materialize c =
  let plan = c.cd_plan in
  let specs = plan.Reconf_sched.p_specs in
  let seq = plan.Reconf_sched.p_seq and len = plan.Reconf_sched.p_len in
  build_schedule ~module_reuse:c.cd_module_reuse
    ~resource_scale:c.cd_resource_scale c.cd_state specs
    plan.Reconf_sched.p_times ~seq_iter:(fun f ->
      let rec build i acc =
        if i < 0 then acc else build (i - 1) (f seq.(i) :: acc)
      in
      build (len - 1) [])

let schedule_once ?(config = default_config) ?(resource_scale = 1.0) ?ctx
    ?(incremental = true) inst =
  match ctx with
  | Some ctx when incremental ->
    (* The struct-of-arrays restart kernel: candidate + materialize.
       Bit-identical to the boxed path below (property-tested). *)
    materialize (schedule_candidate ~config ~resource_scale ~ctx inst)
  | _ ->
    let state =
      match ctx with
      | Some ctx -> Context.state ctx ~resource_scale
      | None ->
        let max_res =
          Resched_fabric.Resource.scale (Arch.max_res inst.Instance.arch)
            resource_scale
        in
        let cost = Cost.make inst ~max_res in
        let impl_of = Impl_select.run ~cost inst ~max_res in
        State.create inst ~resource_scale ~cost ~impl_of ()
    in
    Log.debug (fun m ->
        m "step 1-2: %d/%d tasks start on hardware, unconstrained makespan %d"
          (count_hw state) (Instance.size inst)
          state.State.cpm.Resched_taskgraph.Cpm.makespan);
    Regions_define.run ~module_reuse:config.module_reuse
      ~ordering:config.ordering state;
    Log.debug (fun m ->
        m "step 3: %d regions defined, %d tasks still on hardware"
          (State.region_count state)
          (count_hw state));
    Sw_balance.run state;
    Log.debug (fun m ->
        m "step 4: %d hardware tasks after balancing" (count_hw state));
    Sw_map.run ~incremental state;
    let specs, sequence =
      Reconf_sched.run ~module_reuse:config.module_reuse ~incremental state
    in
    Log.debug (fun m ->
        m "step 7: %d reconfigurations sequenced on the controller"
          (Array.length specs));
    schedule_of_state ~module_reuse:config.module_reuse ~resource_scale state
      specs sequence

let all_software_schedule inst =
  let impl_of =
    Array.init (Instance.size inst) (fun u -> Instance.fastest_sw inst u)
  in
  let state = State.create inst ~impl_of () in
  Sw_map.run state;
  let sched = schedule_of_state state [||] [] in
  { sched with Schedule.floorplan = Some [||] }

let region_needs (sched : Schedule.t) =
  Array.map (fun (r : Schedule.region) -> r.Schedule.res) sched.Schedule.regions

let run ?(config = default_config) ?ctx inst =
  let device = inst.Instance.arch.Arch.device in
  let sched_time = ref 0. and plan_time = ref 0. in
  let rec attempt k scale =
    if k > config.max_attempts then begin
      Log.warn (fun m ->
          m "no floorplannable schedule after %d attempts; all-software \
             fallback"
            config.max_attempts);
      let t0 = Unix.gettimeofday () in
      let fallback = all_software_schedule inst in
      sched_time := !sched_time +. (Unix.gettimeofday () -. t0);
      (fallback, k - 1)
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let sched = schedule_once ~config ~resource_scale:scale ?ctx inst in
      sched_time := !sched_time +. (Unix.gettimeofday () -. t0);
      let needs = region_needs sched in
      if Array.length needs = 0 then
        ({ sched with Schedule.floorplan = Some [||] }, k)
      else begin
        let report =
          match config.floorplan_cache with
          | Some cache ->
            Resched_floorplan.Fp_cache.check cache
              ~engine:config.floorplan_engine
              ?node_limit:config.floorplan_node_limit device needs
          | None ->
            Floorplanner.check ~engine:config.floorplan_engine
              ?node_limit:config.floorplan_node_limit device needs
        in
        plan_time := !plan_time +. report.Floorplanner.elapsed;
        match report.Floorplanner.verdict with
        | Floorplanner.Feasible placements ->
          Log.info (fun m ->
              m "attempt %d (scale %.2f): makespan %d, %d regions, \
                 floorplan found"
                k scale sched.Schedule.makespan (Array.length needs));
          ({ sched with Schedule.floorplan = Some placements }, k)
        | Floorplanner.Infeasible | Floorplanner.Unknown ->
          Log.debug (fun m ->
              m "attempt %d (scale %.2f): %d regions not floorplannable; \
                 shrinking"
                k scale (Array.length needs));
          attempt (k + 1) (scale *. config.shrink_factor)
      end
    end
  in
  let sched, attempts = attempt 1 1.0 in
  ( sched,
    {
      attempts;
      scheduling_seconds = !sched_time;
      floorplanning_seconds = !plan_time;
    } )
