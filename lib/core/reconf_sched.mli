(** Step 7 — reconfigurations scheduling (Sec. V-G).

    Decides a total order for the reconfiguration tasks on the single
    reconfiguration controller. Critical reconfigurations (outgoing task
    on the critical path) are placed first, lowest [T_MIN] first, since
    any delay on them propagates fully; each non-critical one is then
    inserted at the earliest controller slot compatible with its window,
    shifting later reconfigurations as required (realized by re-resolving
    the augmented graph, which is exactly the paper's delay
    propagation). *)

val run : ?module_reuse:bool -> ?incremental:bool -> State.t ->
  Timing.reconf_spec array * int list
(** Returns the reconfiguration specs and the chosen controller sequence
    (indices into the spec array, execution order).

    [incremental] (default [true]) re-times the partial sequence through
    a {!Timing.Solver} built once per call and answers dependency-order
    queries from a one-shot {!Resched_taskgraph.Graph.closure}; with
    [incremental:false] every insertion rebuilds the augmented graph
    from scratch ({!Timing.resolve}) and runs a fresh traversal per
    {!Timing.must_precede} query. Both paths produce the identical
    sequence (property-tested); the legacy path is the oracle. *)

(* ------------------------------------------------------------------ *)

type arena
(** Reusable buffers for {!run_hot}: a {!Timing.Solver.scratch} solver,
    a closure buffer and the sequencing arrays — one per restart arena
    ({!Pa.Context}), refilled every iteration. *)

val make_arena : unit -> arena

type plan = {
  p_specs : Timing.reconf_spec array;  (** as {!run}'s first component *)
  p_seq : int array;
      (** controller sequence: the first [p_len] entries, {e borrowed}
          from the arena *)
  p_len : int;
  p_times : Timing.resolved;
      (** final resolved times over the complete sequence, {e borrowed}
          from the arena's solver *)
}

val run_hot : ?module_reuse:bool -> arena -> State.t -> plan
(** The [incremental:true] algorithm of {!run} executed over [arena]'s
    flat buffers: same specs, bit-identical sequence, plus one final
    resolve so callers can read every start/end time without re-timing.
    The returned plan aliases the arena — valid only until the next
    [run_hot] on the same arena; copy what must survive. *)
