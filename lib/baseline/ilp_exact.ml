module Lp = Resched_milp.Lp
module Branch_bound = Resched_milp.Branch_bound
module Resource = Resched_fabric.Resource
module Bitstream = Resched_fabric.Bitstream
module Device = Resched_fabric.Device
module Graph = Resched_taskgraph.Graph
module Cpm = Resched_taskgraph.Cpm
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Schedule = Resched_core.Schedule

type result = {
  schedule : Schedule.t;
  ilp_objective : float;
  proved_optimal : bool;
  nodes : int;
  vars : int;
  constraints : int;
}

type opt =
  | O_sw of { proc : int; impl_idx : int; dur : int }
  | O_hw of { slot : int; impl_idx : int; dur : int; res : Resource.t }

let opt_dur = function O_sw o -> o.dur | O_hw o -> o.dur

type model = {
  m : Lp.t;
  n : int;
  slots : int;
  horizon : float;
  options : opt array array;  (** per task *)
  y : Lp.var array array;  (** per task, per option *)
  phi : Lp.var array array;  (** per task, per slot *)
  order : Lp.var option array array;
      (** [order.(a).(b)] for a < b: 1 iff a before b; None when the
          dependency structure fixes the direction *)
  forced : bool array array;
      (** [forced.(a).(b)]: a provably precedes b (dependency path) *)
  start : Lp.var array;
  rstart : Lp.var array;
  rdur : Lp.var array;
  makespan : Lp.var;
  res : Lp.var array array;  (** per slot, per resource kind *)
}

(* (1 - before(a,b)) as (terms, constant): big-M deactivators multiply
   this by the chosen H. *)
let not_before model a b =
  if model.forced.(a).(b) then ([], 0.)
  else if model.forced.(b).(a) then ([], 1.)
  else if a < b then
    match model.order.(a).(b) with
    | Some o -> ([ (o, -1.) ], 1.)
    | None -> assert false
  else begin
    match model.order.(b).(a) with
    | Some o -> ([ (o, 1.) ], 0.)
    | None -> assert false
  end

let kappa device ~bits_per_tick kind =
  Bitstream.bits_per_unit device.Device.model kind /. bits_per_tick

let build ?(max_slots = 4) inst =
  let n = Instance.size inst in
  let arch = inst.Instance.arch in
  let device = arch.Arch.device in
  let slots = Stdlib.min max_slots n in
  let m = Lp.create () in
  (* Horizon: serial execution of the slowest implementations plus one
     full-device reconfiguration per task. *)
  let horizon =
    let serial =
      Array.fold_left
        (fun acc impls ->
          acc
          + Array.fold_left (fun a (i : Impl.t) -> Stdlib.max a i.Impl.time) 0 impls)
        0 inst.Instance.impls
    in
    float_of_int (serial + (n * Arch.reconf_ticks arch (Arch.max_res arch)) + 1)
  in
  let options =
    Array.init n (fun t ->
        let sw_idx = Instance.fastest_sw inst t in
        let sw_dur = (Instance.impl inst ~task:t ~idx:sw_idx).Impl.time in
        let sw =
          List.init arch.Arch.processors (fun proc ->
              O_sw { proc; impl_idx = sw_idx; dur = sw_dur })
        in
        let hw =
          List.concat_map
            (fun (impl_idx, (i : Impl.t)) ->
              List.init slots (fun slot ->
                  O_hw { slot; impl_idx; dur = i.Impl.time; res = i.Impl.res }))
            (Instance.hw_impls inst t)
        in
        Array.of_list (sw @ hw))
  in
  let y =
    Array.mapi
      (fun t opts ->
        Array.mapi
          (fun c _ ->
            Lp.add_binary m ~name:(Printf.sprintf "y_%d_%d" t c) ~obj:0. ())
          opts)
      options
  in
  let phi =
    Array.init n (fun t ->
        Array.init slots (fun s ->
            Lp.add_binary m ~name:(Printf.sprintf "phi_%d_%d" t s) ~obj:0. ()))
  in
  let forced =
    Array.init n (fun a ->
        let reach = Graph.reachable inst.Instance.graph a in
        Array.init n (fun b -> b <> a && reach.(b)))
  in
  let order =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a < b && (not forced.(a).(b)) && not forced.(b).(a) then
              Some
                (Lp.add_binary m ~name:(Printf.sprintf "o_%d_%d" a b) ~obj:0.
                   ())
            else None))
  in
  let time_var name =
    Lp.add_var m ~lb:0. ~ub:horizon ~name ~obj:0. ()
  in
  let start = Array.init n (fun t -> time_var (Printf.sprintf "s_%d" t)) in
  let rstart = Array.init n (fun t -> time_var (Printf.sprintf "rs_%d" t)) in
  let rdur = Array.init n (fun t -> time_var (Printf.sprintf "rd_%d" t)) in
  let makespan = Lp.add_var m ~lb:0. ~ub:horizon ~name:"makespan" ~obj:1. () in
  let res =
    Array.init slots (fun s ->
        Array.map
          (fun kind ->
            Lp.add_var m ~lb:0.
              ~ub:(float_of_int (Resource.get (Arch.max_res arch) kind))
              ~name:(Printf.sprintf "res_%d_%s" s (Resource.kind_name kind))
              ~obj:0. ())
          Resource.kinds)
  in
  let model =
    { m; n; slots; horizon; options; y; phi; order; forced; start; rstart;
      rdur; makespan; res }
  in
  (* Helper expressions. *)
  let dur_terms t = (* Σ dur(c) y_{t,c} *)
    Array.to_list
      (Array.mapi (fun c o -> (y.(t).(c), float_of_int (opt_dur o))) options.(t))
  in
  let g_terms t s =
    (* Σ_{c = Hw on s} y_{t,c} *)
    let acc = ref [] in
    Array.iteri
      (fun c o ->
        match o with
        | O_hw { slot; _ } when slot = s -> acc := (y.(t).(c), 1.) :: !acc
        | O_hw _ | O_sw _ -> ())
      options.(t);
    !acc
  in
  let q_terms t p =
    let acc = ref [] in
    Array.iteri
      (fun c o ->
        match o with
        | O_sw { proc; _ } when proc = p -> acc := (y.(t).(c), 1.) :: !acc
        | O_sw _ | O_hw _ -> ())
      options.(t);
    !acc
  in
  let h_terms t =
    (* Σ_s g − Σ_s phi: 1 iff t needs a reconfiguration *)
    List.concat (List.init slots (fun s -> g_terms t s))
    @ List.init slots (fun s -> (phi.(t).(s), -1.))
  in
  let scale c terms = List.map (fun (v, k) -> (v, c *. k)) terms in
  let ge terms const = Lp.add_constraint m terms Lp.Ge const in
  let le terms const = Lp.add_constraint m terms Lp.Le const in
  let big = horizon in
  (* Disjunctive constraint
       body >= rhs0 − H·Σ_k (1 − ind_k) − H·(1 − before(a,b))
     where every [ind_k] is a 0/1-valued linear expression that is 1 when
     the constraint should be active. Rearranged to
       body − H·Σ ind + H·nb_terms >= rhs0 − H·K − H·nb_const
     with (nb_terms, nb_const) encoding (1 − before). *)
  let activated_ge ?before ~inds ~rhs0 body =
    let nb_terms, nb_const =
      match before with
      | None -> ([], 0.)
      | Some (a, b) -> not_before model a b
    in
    let terms =
      body
      @ List.concat_map (fun ind -> scale (-.big) ind) inds
      @ scale big nb_terms
    in
    ge terms
      (rhs0 -. (big *. float_of_int (List.length inds)) -. (big *. nb_const))
  in
  (* One option per task. *)
  for t = 0 to n - 1 do
    Lp.add_constraint m
      (Array.to_list (Array.map (fun v -> (v, 1.)) y.(t)))
      Lp.Eq 1.
  done;
  (* Slot sizing and device capacity. *)
  for t = 0 to n - 1 do
    Array.iteri
      (fun c o ->
        match o with
        | O_hw { slot; res = need; _ } ->
          Array.iteri
            (fun ki kind ->
              ge
                [ (res.(slot).(ki), 1.);
                  (y.(t).(c), -.float_of_int (Resource.get need kind)) ]
                0.)
            Resource.kinds
        | O_sw _ -> ())
      options.(t)
  done;
  Array.iteri
    (fun ki kind ->
      le
        (List.init slots (fun s -> (res.(s).(ki), 1.)))
        (float_of_int (Resource.get (Arch.max_res arch) kind)))
    Resource.kinds;
  (* Makespan and dependencies. *)
  for t = 0 to n - 1 do
    ge ((makespan, 1.) :: (start.(t), -1.) :: scale (-1.) (dur_terms t)) 0.
  done;
  List.iter
    (fun (a, b) ->
      ge ((start.(b), 1.) :: (start.(a), -1.) :: scale (-1.) (dur_terms a)) 0.)
    (Graph.edges inst.Instance.graph);
  (* First-task indicators: phi <= g, at most one per slot. *)
  for t = 0 to n - 1 do
    for s = 0 to slots - 1 do
      ge (g_terms t s @ [ (phi.(t).(s), -1.) ]) 0.
    done
  done;
  for s = 0 to slots - 1 do
    le (List.init n (fun t -> (phi.(t).(s), 1.))) 1.
  done;
  (* Reconfiguration duration: rdur_t >= Σ_r κ_r res_{s,r} when t runs on
     slot s and is not the slot's first task. *)
  let kappas =
    Array.map
      (fun kind -> kappa device ~bits_per_tick:arch.Arch.bits_per_tick kind)
      Resource.kinds
  in
  for t = 0 to n - 1 do
    for s = 0 to slots - 1 do
      let body =
        (rdur.(t), 1.)
        :: Array.to_list
             (Array.mapi (fun ki _ -> (res.(s).(ki), -.kappas.(ki)))
                Resource.kinds)
      in
      let needs_reconf = g_terms t s @ [ (phi.(t).(s), -1.) ] in
      activated_ge ~inds:[ needs_reconf ] ~rhs0:0. body
    done
  done;
  (* Own reconfiguration precedes the body. *)
  for t = 0 to n - 1 do
    activated_ge ~inds:[ h_terms t ] ~rhs0:0.
      [ (start.(t), 1.); (rstart.(t), -1.); (rdur.(t), -1.) ]
  done;
  (* Pairwise exclusivity, for every ordered pair (a before b). *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && not forced.(b).(a) then begin
        let after_a_body var =
          (var, 1.) :: (start.(a), -1.) :: scale (-1.) (dur_terms a)
        in
        (* Processors: b starts after a ends when they share one. *)
        for p = 0 to arch.Arch.processors - 1 do
          activated_ge ~before:(a, b)
            ~inds:[ q_terms a p; q_terms b p ]
            ~rhs0:0.
            (after_a_body start.(b))
        done;
        for s = 0 to slots - 1 do
          (* b's reconfiguration and body wait for a's body on a shared
             slot. *)
          activated_ge ~before:(a, b)
            ~inds:[ g_terms a s; g_terms b s ]
            ~rhs0:0.
            (after_a_body rstart.(b));
          activated_ge ~before:(a, b)
            ~inds:[ g_terms a s; g_terms b s ]
            ~rhs0:0.
            (after_a_body start.(b));
          (* And b cannot be the slot's first task:
             phi_b <= (1 − g_a) + (1 − g_b) + (1 − before). *)
          let nb_terms, nb_const = not_before model a b in
          le
            ((phi.(b).(s), 1.)
            :: (g_terms a s @ g_terms b s @ scale (-1.) nb_terms))
            (2. +. nb_const)
        done;
        (* Controller: reconfigurations serialize in the same order. *)
        activated_ge ~before:(a, b)
          ~inds:[ h_terms a; h_terms b ]
          ~rhs0:0.
          [ (rstart.(b), 1.); (rstart.(a), -1.); (rdur.(a), -1.) ]
      end
    done
  done;
  model

let model_size ?max_slots inst =
  let model = build ?max_slots inst in
  (Lp.num_vars model.m, Lp.num_constraints model.m)

(* ------------------------------------------------------------------ *)
(* Decision extraction and integer re-timing                           *)

let extract inst (model : model) values =
  let n = model.n in
  let arch = inst.Instance.arch in
  let chosen =
    Array.init n (fun t ->
        let best = ref 0 and best_v = ref neg_infinity in
        Array.iteri
          (fun c (v : Lp.var) ->
            let x = values.((v :> int)) in
            if x > !best_v then begin
              best_v := x;
              best := c
            end)
          model.y.(t);
        model.options.(t).(!best))
  in
  (* Region ids for slots actually used. *)
  let slot_region = Array.make model.slots (-1) in
  let next_region = ref 0 in
  Array.iter
    (fun o ->
      match o with
      | O_hw { slot; _ } ->
        if slot_region.(slot) = -1 then begin
          slot_region.(slot) <- !next_region;
          incr next_region
        end
      | O_sw _ -> ())
    chosen;
  let nregions = !next_region in
  let region_res = Array.make nregions Resource.zero in
  Array.iter
    (fun o ->
      match o with
      | O_hw { slot; res; _ } ->
        let r = slot_region.(slot) in
        region_res.(r) <- Resource.max_components region_res.(r) res
      | O_sw _ -> ())
    chosen;
  let region_reconf = Array.map (Arch.reconf_ticks arch) region_res in
  let val_of (v : Lp.var) = values.((v :> int)) in
  let start_of t = val_of model.start.(t) in
  let rstart_of t = val_of model.rstart.(t) in
  (* Per-region execution order (by LP start), first task free. *)
  let region_tasks = Array.make nregions [] in
  Array.iteri
    (fun t o ->
      match o with
      | O_hw { slot; _ } ->
        let r = slot_region.(slot) in
        region_tasks.(r) <- t :: region_tasks.(r)
      | O_sw _ -> ())
    chosen;
  let region_order =
    Array.map
      (fun tasks ->
        List.sort (fun a b -> compare (start_of a) (start_of b)) tasks)
      region_tasks
  in
  (* Reconfiguration specs: every non-first region task. *)
  let reconf_specs = ref [] in
  Array.iteri
    (fun r tasks ->
      let rec pairs = function
        | a :: b :: tl ->
          reconf_specs := (r, a, b) :: !reconf_specs;
          pairs (b :: tl)
        | [ _ ] | [] -> ()
      in
      pairs tasks)
    region_order;
  let reconf_specs =
    List.sort
      (fun (_, _, b1) (_, _, b2) -> compare (rstart_of b1) (rstart_of b2))
      !reconf_specs
  in
  let nr = List.length reconf_specs in
  (* Integer re-timing over the expanded DAG. *)
  let g = Graph.create (n + nr) in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges inst.Instance.graph);
  List.iteri
    (fun k (_, a, b) ->
      Graph.add_edge g a (n + k);
      Graph.add_edge g (n + k) b)
    reconf_specs;
  (* Controller chain. *)
  List.iteri
    (fun k _ -> if k > 0 then Graph.add_edge g (n + k - 1) (n + k))
    reconf_specs;
  (* Processor chains. *)
  for p = 0 to arch.Arch.processors - 1 do
    let mine = ref [] in
    Array.iteri
      (fun t o ->
        match o with
        | O_sw { proc; _ } when proc = p -> mine := t :: !mine
        | O_sw _ | O_hw _ -> ())
      chosen;
    let ordered = List.sort (fun a b -> compare (start_of a) (start_of b)) !mine in
    let rec chain = function
      | a :: b :: tl ->
        if not (Graph.has_edge g a b) then Graph.add_edge g a b;
        chain (b :: tl)
      | [ _ ] | [] -> ()
    in
    chain ordered
  done;
  let dur t =
    match chosen.(t) with O_sw { dur; _ } | O_hw { dur; _ } -> dur
  in
  let durations =
    Array.init (n + nr) (fun i ->
        if i < n then dur i
        else begin
          let r, _, _ = List.nth reconf_specs (i - n) in
          region_reconf.(r)
        end)
  in
  (* LP rounding can produce tied reconfiguration starts whose sort order
     contradicts a dependency chain. In that (rare) case, drop the
     LP-derived controller chain and re-chain the reconfiguration nodes
     in a topological order of the rest of the expanded graph, which is
     always consistent. *)
  let cpm =
    match Cpm.compute g ~durations with
    | cpm -> cpm
    | exception Graph.Cycle _ ->
      let g2 = Graph.create (n + nr) in
      List.iter
        (fun (u, v) ->
          (* Keep everything but controller edges (reconf -> reconf). *)
          if not (u >= n && v >= n) then Graph.add_edge g2 u v)
        (Graph.edges g);
      let topo = Graph.topological_order g2 in
      let rec_nodes =
        Array.to_list topo |> List.filter (fun node -> node >= n)
      in
      let rec chain = function
        | a :: b :: tl ->
          Graph.add_edge g2 a b;
          chain (b :: tl)
        | [ _ ] | [] -> ()
      in
      chain rec_nodes;
      Cpm.compute g2 ~durations
  in
  let task_start = Array.sub cpm.Cpm.t_min 0 n in
  let slots_arr =
    Array.init n (fun t ->
        let placement, impl_idx =
          match chosen.(t) with
          | O_sw { proc; impl_idx; _ } -> (Schedule.On_processor proc, impl_idx)
          | O_hw { slot; impl_idx; _ } ->
            (Schedule.On_region slot_region.(slot), impl_idx)
        in
        {
          Schedule.impl_idx;
          placement;
          start_ = task_start.(t);
          end_ = task_start.(t) + dur t;
        })
  in
  let regions =
    Array.init nregions (fun r ->
        let ordered =
          List.sort
            (fun a b -> compare task_start.(a) task_start.(b))
            region_tasks.(r)
        in
        { Schedule.res = region_res.(r); reconf_ticks = region_reconf.(r);
          tasks = ordered })
  in
  let reconfigurations =
    List.mapi
      (fun k (r, a, b) ->
        let s = cpm.Cpm.t_min.(n + k) in
        { Schedule.region = r; t_in = a; t_out = b; r_start = s;
          r_end = s + region_reconf.(r) })
      reconf_specs
  in
  let makespan =
    Array.fold_left
      (fun acc (s : Schedule.task_slot) -> Stdlib.max acc s.Schedule.end_)
      0 slots_arr
  in
  {
    Schedule.instance = inst;
    regions;
    slots = slots_arr;
    reconfigurations;
    makespan;
    floorplan = None;
    module_reuse = false;
    resource_scale = 1.0;
  }

let solve ?(node_limit = 100_000) ?time_limit ?max_slots ?jobs ?engine inst =
  let model = build ?max_slots inst in
  let vars = Lp.num_vars model.m and constraints = Lp.num_constraints model.m in
  match Branch_bound.solve ~node_limit ?time_limit ?jobs ?engine model.m with
  | Branch_bound.Optimal { objective; values; nodes; _ } ->
    Some
      {
        schedule = extract inst model values;
        ilp_objective = objective;
        proved_optimal = true;
        nodes;
        vars;
        constraints;
      }
  | Branch_bound.Feasible { objective; values; nodes; _ } ->
    Some
      {
        schedule = extract inst model values;
        ilp_objective = objective;
        proved_optimal = false;
        nodes;
        vars;
        constraints;
      }
  | Branch_bound.Infeasible | Branch_bound.Unbounded | Branch_bound.Node_limit
    -> None
