(** Monolithic ILP formulation of the whole scheduling problem, after
    Redaelli et al. [8] (the paper's related work): implementation
    selection, mapping to processors or to sized reconfigurable region
    slots, task and reconfiguration timing with a single controller and
    reconfiguration prefetching — all in one mixed-integer program solved
    by {!Resched_milp.Branch_bound}.

    The paper dismisses this line of work because "the resulting
    complexity of the ILP formulation makes the approach not viable even
    for small problem instances"; the [viability] bench section
    reproduces exactly that observation. On 2-4 task instances the model
    proves optimality and must agree with {!Optimal} (tested); beyond a
    handful of tasks the branch-and-bound hits its node budget.

    Model summary (one binary per task-option, slots sized by the
    implementations routed to them):
    - y_{t,c}: task t uses option c (SW on processor p | HW impl i on
      slot s); Σ_c y = 1
    - res_{s,r} >= res_{i,r} y_{t,(i,s)}; Σ_s res_{s,r} <= maxRes_r
    - continuous start/reconfiguration-start times with big-M
      disjunctions driven by shared order binaries o_{t,t'}
    - per-slot "first task" indicators make the initial configuration
      free, matching the repository-wide semantics
    - minimize the makespan.

    Decisions are extracted from the MILP solution and re-timed with the
    repository's integer longest-path semantics, so the returned schedule
    always passes {!Resched_core.Validate} regardless of floating-point
    noise in the solve. *)

type result = {
  schedule : Resched_core.Schedule.t;
  ilp_objective : float;  (** the MILP's (continuous-time) makespan *)
  proved_optimal : bool;
  nodes : int;  (** branch-and-bound nodes *)
  vars : int;
  constraints : int;
}

val solve : ?node_limit:int -> ?time_limit:float -> ?max_slots:int ->
  ?jobs:int -> ?engine:Resched_milp.Branch_bound.engine ->
  Resched_platform.Instance.t -> result option
(** [solve inst] builds and solves the ILP. [max_slots] (default
    [min 4 n]) bounds the number of reconfigurable region slots offered
    to the model; [node_limit] defaults to 100_000; [time_limit] (seconds)
    makes the solve anytime; [jobs] (default 1) parallelizes the
    branch-and-bound over a domain pool; [engine] picks the LP engine
    (default {!Resched_milp.Branch_bound.default_engine}). [None] when
    the branch-and-bound found no integer solution within the budget. *)

val model_size : ?max_slots:int -> Resched_platform.Instance.t -> int * int
(** (variables, constraints) of the model that [solve] would build —
    used to report how fast the formulation grows. *)
