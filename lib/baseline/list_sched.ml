module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Impl = Resched_platform.Impl
module Schedule = Resched_core.Schedule
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Pa = Resched_core.Pa

let mean_time inst u =
  let impls = inst.Instance.impls.(u) in
  let total = Array.fold_left (fun acc i -> acc + i.Impl.time) 0 impls in
  float_of_int total /. float_of_int (Array.length impls)

let upward_ranks inst =
  let g = inst.Instance.graph in
  let n = Instance.size inst in
  let rank = Array.make n 0. in
  let order = Graph.topological_order g in
  for i = n - 1 downto 0 do
    let u = order.(i) in
    let succ_best =
      List.fold_left (fun acc v -> Stdlib.max acc rank.(v)) 0. (Graph.succs g u)
    in
    rank.(u) <- mean_time inst u +. succ_best
  done;
  rank

let schedule_once ?(module_reuse = false) ?(resource_scale = 1.0) inst =
  let n = Instance.size inst in
  let rank = upward_ranks inst in
  let order =
    List.sort
      (fun a b -> compare (rank.(b), a) (rank.(a), b))
      (List.init n (fun i -> i))
  in
  let state = ref (Partial.create ~module_reuse ~resource_scale inst) in
  List.iter
    (fun task ->
      let best =
        List.fold_left
          (fun acc option ->
            let s = Partial.apply !state ~task option in
            match acc with
            | Some b
              when (b.Partial.finish.(task), b.Partial.makespan)
                   <= (s.Partial.finish.(task), s.Partial.makespan) -> acc
            | Some _ | None -> Some s)
          None
          (Partial.options !state task)
      in
      match best with Some s -> state := s | None -> assert false)
    order;
  let sched = Partial.to_schedule !state in
  { sched with Schedule.resource_scale }

let run_with_stats ?(module_reuse = false) ?cache inst =
  let device = inst.Instance.arch.Arch.device in
  let stats_before = Option.map Fp_cache.stats cache in
  let check needs =
    match cache with
    | Some cache -> Fp_cache.check cache device needs
    | None -> Floorplanner.check device needs
  in
  let rec attempt k scale =
    if k > 8 then Pa.all_software_schedule inst
    else begin
      let sched = schedule_once ~module_reuse ~resource_scale:scale inst in
      let needs =
        Array.map (fun (r : Schedule.region) -> r.Schedule.res)
          sched.Schedule.regions
      in
      if Array.length needs = 0 then
        { sched with Schedule.floorplan = Some [||] }
      else begin
        match (check needs).Floorplanner.verdict with
        | Floorplanner.Feasible placements ->
          { sched with Schedule.floorplan = Some placements }
        | Floorplanner.Infeasible | Floorplanner.Unknown ->
          attempt (k + 1) (scale *. 0.9)
      end
    end
  in
  let sched = attempt 1 1.0 in
  let cache_stats =
    match (cache, stats_before) with
    | Some cache, Some before -> Some (Fp_cache.diff (Fp_cache.stats cache) before)
    | _ -> None
  in
  (sched, cache_stats)

let run ?module_reuse ?cache inst =
  fst (run_with_stats ?module_reuse ?cache inst)
