module Graph = Resched_taskgraph.Graph
module Instance = Resched_platform.Instance
module Arch = Resched_platform.Arch
module Schedule = Resched_core.Schedule
module Floorplanner = Resched_floorplan.Floorplanner
module Fp_cache = Resched_floorplan.Fp_cache
module Pa = Resched_core.Pa

type config = {
  k : int;
  chunk_node_limit : int;
  module_reuse : bool;
  floorplan_engine : Floorplanner.engine;
  floorplan_node_limit : int option;
  floorplan_jobs : int;
  floorplan_cache : Fp_cache.t option;
  max_attempts : int;
  shrink_factor : float;
}

let config ~k =
  if k <= 0 then invalid_arg "Isk.config: k must be positive";
  {
    k;
    chunk_node_limit = 200_000;
    module_reuse = true;
    floorplan_engine = Floorplanner.Backtracking;
    floorplan_node_limit = None;
    floorplan_jobs = 1;
    floorplan_cache = None;
    max_attempts = 8;
    shrink_factor = 0.9;
  }

type stats = {
  chunks : int;
  nodes : int;
  every_chunk_optimal : bool;
  attempts : int;
  scheduling_seconds : float;
  floorplanning_seconds : float;
  cache_stats : Fp_cache.stats option;
}

let chunks_of_order k order =
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | u :: tl ->
      if count = k then go (List.rev current :: acc) [ u ] 1 tl
      else go acc (u :: current) (count + 1) tl
  in
  go [] [] 0 (Array.to_list order)

let schedule_once ?(config = config ~k:1) ?(resource_scale = 1.0) inst =
  let t0 = Unix.gettimeofday () in
  let order = Graph.topological_order inst.Instance.graph in
  let chunks = chunks_of_order config.k order in
  let state =
    ref (Partial.create ~module_reuse:config.module_reuse ~resource_scale inst)
  in
  let nodes = ref 0 in
  let all_optimal = ref true in
  List.iter
    (fun chunk ->
      let result =
        Chunk_dfs.solve ~node_limit:config.chunk_node_limit !state ~chunk
      in
      state := result.Chunk_dfs.state;
      nodes := !nodes + result.Chunk_dfs.nodes;
      if not result.Chunk_dfs.optimal then all_optimal := false)
    chunks;
  let sched = Partial.to_schedule !state in
  let sched = { sched with Schedule.resource_scale } in
  ( sched,
    {
      chunks = List.length chunks;
      nodes = !nodes;
      every_chunk_optimal = !all_optimal;
      attempts = 1;
      scheduling_seconds = Unix.gettimeofday () -. t0;
      floorplanning_seconds = 0.;
      cache_stats = None;
    } )

let run ?(config = config ~k:1) inst =
  let device = inst.Instance.arch.Arch.device in
  let sched_time = ref 0. and plan_time = ref 0. in
  let nodes = ref 0 and chunks = ref 0 and all_optimal = ref true in
  let stats_before =
    Option.map Fp_cache.stats config.floorplan_cache
  in
  let rec attempt k scale =
    if k > config.max_attempts then begin
      let t0 = Unix.gettimeofday () in
      let fallback = Pa.all_software_schedule inst in
      sched_time := !sched_time +. (Unix.gettimeofday () -. t0);
      (fallback, k - 1)
    end
    else begin
      let sched, stats = schedule_once ~config ~resource_scale:scale inst in
      sched_time := !sched_time +. stats.scheduling_seconds;
      nodes := !nodes + stats.nodes;
      chunks := !chunks + stats.chunks;
      if not stats.every_chunk_optimal then all_optimal := false;
      let needs =
        Array.map (fun (r : Schedule.region) -> r.Schedule.res)
          sched.Schedule.regions
      in
      if Array.length needs = 0 then
        ({ sched with Schedule.floorplan = Some [||] }, k)
      else begin
        let report =
          match config.floorplan_cache with
          | Some cache ->
            (* Note: the cache path cannot thread [floorplan_jobs] to the
               MILP engine; IS-k only uses jobs > 1 with [Milp], which is
               not the cached configuration. *)
            Fp_cache.check cache ~engine:config.floorplan_engine
              ?node_limit:config.floorplan_node_limit device needs
          | None ->
            Floorplanner.check ~engine:config.floorplan_engine
              ?node_limit:config.floorplan_node_limit
              ~jobs:config.floorplan_jobs device needs
        in
        plan_time := !plan_time +. report.Floorplanner.elapsed;
        match report.Floorplanner.verdict with
        | Floorplanner.Feasible placements ->
          ({ sched with Schedule.floorplan = Some placements }, k)
        | Floorplanner.Infeasible | Floorplanner.Unknown ->
          attempt (k + 1) (scale *. config.shrink_factor)
      end
    end
  in
  let sched, attempts = attempt 1 1.0 in
  let cache_stats =
    match (config.floorplan_cache, stats_before) with
    | Some cache, Some before -> Some (Fp_cache.diff (Fp_cache.stats cache) before)
    | _ -> None
  in
  ( sched,
    {
      chunks = !chunks;
      nodes = !nodes;
      every_chunk_optimal = !all_optimal;
      attempts;
      scheduling_seconds = !sched_time;
      floorplanning_seconds = !plan_time;
      cache_stats;
    } )
