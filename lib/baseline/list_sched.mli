(** HEFT-style list scheduler — an additional sanity baseline.

    Tasks are prioritized by upward rank (critical-path distance to the
    sinks, with each task weighted by the mean execution time over its
    implementations) and greedily placed, one at a time, on the
    (implementation, region/processor) option that finishes earliest.
    This is the classic list-based scheduling recipe the related work
    builds on ([4], [10]); it ignores the resource-efficiency insight of
    PA and the chunk-exactness of IS-k, so both should usually beat it. *)

val upward_ranks : Resched_platform.Instance.t -> float array
(** The priority of each task (higher runs earlier). *)

val schedule_once : ?module_reuse:bool -> ?resource_scale:float ->
  Resched_platform.Instance.t -> Resched_core.Schedule.t

val run : ?module_reuse:bool -> ?cache:Resched_floorplan.Fp_cache.t ->
  Resched_platform.Instance.t -> Resched_core.Schedule.t
(** With the same floorplan-validation/shrink-retry loop as PA and
    IS-k. [cache], when given, memoizes the floorplan checks in a cache
    shared with the other schedulers. *)

val run_with_stats : ?module_reuse:bool ->
  ?cache:Resched_floorplan.Fp_cache.t -> Resched_platform.Instance.t ->
  Resched_core.Schedule.t * Resched_floorplan.Fp_cache.stats option
(** Like {!run}, additionally reporting this run's cache activity (the
    {!Resched_floorplan.Fp_cache.diff} of the shared cache's counters
    around the run); [None] when no cache is given. *)
