(** IS-k — the iterative scheduling baseline (Deiana et al. [6],
    Sec. II/VII of the reproduced paper).

    Tasks are committed in topological order, k at a time; each chunk is
    scheduled optimally with respect to the already-committed prefix
    ({!Chunk_dfs}). IS-1 and IS-5 are the configurations the paper
    evaluates. As in the paper, IS-k exploits module reuse (a feature PA
    deliberately lacks), and validates its region set with the
    floorplanner, virtually shrinking the FPGA on failure exactly like
    PA. *)

type config = {
  k : int;
  chunk_node_limit : int;  (** branch-and-bound budget per chunk *)
  module_reuse : bool;  (** default true: [6] supports module reuse *)
  floorplan_engine : Resched_floorplan.Floorplanner.engine;
  floorplan_node_limit : int option;
  floorplan_jobs : int;
      (** worker domains for the MILP floorplanner's branch-and-bound *)
  floorplan_cache : Resched_floorplan.Fp_cache.t option;
      (** when set, the shrink-retry loop consults this shared cache
          instead of calling the floorplanner directly (note:
          [floorplan_jobs] is ignored on the cached path) *)
  max_attempts : int;
  shrink_factor : float;
}

val config : k:int -> config
(** Defaults: 200_000 nodes per chunk, module reuse on, backtracking
    floorplanner, 1 floorplan job, no cache, 8 attempts, shrink 0.9. *)

type stats = {
  chunks : int;
  nodes : int;  (** branch-and-bound nodes over all chunks and attempts *)
  every_chunk_optimal : bool;
  attempts : int;
  scheduling_seconds : float;
  floorplanning_seconds : float;
  cache_stats : Resched_floorplan.Fp_cache.stats option;
      (** this run's cache activity ({!Resched_floorplan.Fp_cache.diff}
          of the shared cache's counters around the run); [None] when no
          cache is configured or for {!schedule_once} *)
}

val schedule_once : ?config:config -> ?resource_scale:float ->
  Resched_platform.Instance.t -> Resched_core.Schedule.t * stats
(** One pass without the floorplan check. *)

val run : ?config:config -> Resched_platform.Instance.t ->
  Resched_core.Schedule.t * stats
(** Full IS-k with floorplan validation and the shrink-retry loop;
    falls back to the all-software schedule after [max_attempts]. *)
