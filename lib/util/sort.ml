(* In-place stable insertion sorts over borrowed scratch segments.

   The restart kernel (PR 7) replaced every per-iteration [List.sort]
   with a hand-rolled insertion sort over a reused scratch array — and
   copied that loop into four pipeline files. This module is the single
   shared implementation. Stability matters: each caller documents that
   its order is bit-identical to the stdlib's [List.sort]/[List.stable_sort]
   (a stable merge sort), and insertion sort preserves ties the same
   way, so the dedup cannot change any schedule. *)

let by_int_key arr ~base ~len ~key =
  for j = base + 1 to base + len - 1 do
    let v = arr.(j) in
    let kv = key v in
    let p = ref (j - 1) in
    while !p >= base && key arr.(!p) > kv do
      arr.(!p + 1) <- arr.(!p);
      decr p
    done;
    arr.(!p + 1) <- v
  done

let by_float_keys arr keys ~base ~len ~desc =
  for j = base + 1 to base + len - 1 do
    let v = arr.(j) and kv = keys.(j) in
    let p = ref (j - 1) in
    while
      !p >= base && (if desc then keys.(!p) < kv else keys.(!p) > kv)
    do
      arr.(!p + 1) <- arr.(!p);
      keys.(!p + 1) <- keys.(!p);
      decr p
    done;
    arr.(!p + 1) <- v;
    keys.(!p + 1) <- kv
  done
