(** Fan-out over OCaml 5 domains: one-shot spawns and a persistent pool.

    {!run} is the original tiny abstraction: spawn a fixed number of
    workers, run an indexed job on each, join them all, propagate
    failures. {!Pool} keeps the worker domains resident so a *batch* of
    fan-outs (the bench's per-group PA-R runs, a server's request
    stream) pays the domain-spawn and first-touch cost once instead of
    per call — and so domain-local state (PA restart arenas, cache L1
    memos) stays warm between calls.

    {!plan_jobs} is the honest-parallelism helper: it reconciles a
    requested fan-out with the machine's core count and says loudly
    (via {!warn_downgrade}) when the two differ, so no benchmark can
    silently report a 1-core run as a parallel comparison. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — the number of workers beyond
    which extra domains only timeshare. *)

val run : jobs:int -> (int -> 'a) -> 'a array
(** [run ~jobs f] evaluates [f i] for every [i] in [0 .. jobs-1], each on
    its own domain except [f 0], which runs on the calling domain, and
    returns the results in index order. All domains are joined before the
    call returns, even when a job raises; the first exception (by index)
    is then re-raised. [jobs] must be >= 1. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f] with [m] held, releasing it on any exit. *)

(* ------------------------------------------------------------------ *)

type plan = {
  requested : int;  (** what the caller asked for *)
  effective : int;  (** what will actually run *)
  cores : int;  (** {!available_cores} at planning time *)
}

val plan_jobs : ?allow_oversubscribe:bool -> requested:int -> unit -> plan
(** Clamp [requested] to [[1 .. available_cores]] — domains beyond the
    core count don't just timeshare under OCaml 5, they stall each other
    on minor-GC stop-the-world rendezvous. [~allow_oversubscribe:true]
    keeps [effective = requested] anyway (for deliberately exercising the
    multi-domain path on small machines); the plan still records the true
    core count so downstream metadata stays honest. *)

val downgraded : plan -> bool
(** [effective < requested]. *)

val warn_downgrade : ?out:out_channel -> label:string -> plan -> unit
(** When {!downgraded}, print a loud, unmissable multi-line warning to
    [out] (default [stderr]) explaining that the run is NOT the parallel
    configuration that was requested. No output otherwise. *)

(* ------------------------------------------------------------------ *)

val pin_available : unit -> bool
(** Whether worker-to-core pinning is supported on this platform
    (Linux [sched_setaffinity]). *)

val pin_to_core : int -> bool
(** Pin the calling domain's thread to core [i mod available cores];
    [false] if unsupported or refused by the OS. Exposed mostly for
    {!Pool.create}'s [~pin] flag. *)

val env_pin_default : unit -> bool
(** The default pinning policy: [true] iff the [RESCHED_PIN] environment
    variable is 1/true/yes and pinning is available. *)

(* ------------------------------------------------------------------ *)

(** Persistent worker pool: [jobs - 1] resident domains plus the caller
    (which always executes job index 0, preserving {!run}'s property
    that worker 0's work happens on the calling domain — sequential
    replays stay bit-identical). *)
module Pool : sig
  type t

  val create : ?pin:bool -> jobs:int -> unit -> t
  (** [jobs >= 1] resident workers. With [~pin:true] (default: set when
      the [RESCHED_PIN] environment variable is 1/true/yes and pinning is
      available), worker [i] pins itself to core [i mod cores] at
      startup; the caller's domain is pinned to core 0 on its first
      {!map}. Pinning failures are silently ignored (the pool still
      works, just unpinned). *)

  val jobs : t -> int

  val map : t -> (int -> 'a) -> 'a array
  (** Run [f i] for [i] in [0 .. jobs-1] on the resident workers (index 0
      on the calling domain) and return results in index order. Like
      {!run}, every worker finishes before the call returns and the
      first exception (by index) is re-raised. Not reentrant: one [map]
      at a time per pool (concurrent calls raise [Invalid_argument]). *)

  val run_chunked : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
  (** Process items [0 .. n-1] with all workers pulling fixed-size chunks
      off a shared atomic cursor — one pool dispatch for the whole batch
      instead of one per item, and dynamic load balance across chunks.
      [chunk] defaults to a size targeting ~8 chunks per worker. *)

  val shutdown : t -> unit
  (** Join the resident domains. Idempotent; the pool is unusable
      afterwards ([map] raises). *)
end
