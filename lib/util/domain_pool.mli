(** Minimal fan-out over OCaml 5 domains.

    A deliberately tiny abstraction: spawn a fixed number of workers, run
    an indexed job on each, join them all, propagate failures. The PA-R
    parallel engine and the bench harness are the clients; nothing here
    depends on the rest of the library. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — the number of workers beyond
    which extra domains only timeshare. *)

val run : jobs:int -> (int -> 'a) -> 'a array
(** [run ~jobs f] evaluates [f i] for every [i] in [0 .. jobs-1], each on
    its own domain except [f 0], which runs on the calling domain, and
    returns the results in index order. All domains are joined before the
    call returns, even when a job raises; the first exception (by index)
    is then re-raised. [jobs] must be >= 1. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f] with [m] held, releasing it on any exit. *)
