type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if Stdlib.float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  let compact = indent <= 0 in
  let nl () = if not compact then Buffer.add_char buf '\n' in
  let pad n =
    if not compact then Buffer.add_string buf (String.make (n * indent) ' ')
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          emit (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  if not compact then Buffer.add_char buf '\n';
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "truncated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            (* surrogate pair *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
               && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
            end
            else cp
          in
          add_utf8 buf cp
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match Stdlib.float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else begin
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match Stdlib.float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let path keys v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) keys

let to_list = function List l -> Some l | _ -> None

let get_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (Stdlib.float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let get_string = function String s -> Some s | _ -> None
