type 'a t = {
  version : int Atomic.t;  (* odd while a writer is publishing *)
  value : 'a Atomic.t;
  lock : Mutex.t;  (* serializes writers; readers only on fallback *)
  retry_count : int Atomic.t;
}

let create v =
  {
    version = Atomic.make 0;
    value = Atomic.make v;
    lock = Mutex.create ();
    retry_count = Atomic.make 0;
  }

(* After this many consecutive optimistic failures the reader queues on
   the writer mutex instead: progress is then guaranteed by the lock,
   and a reader that lost this many races is running concurrently with
   a write storm where one mutex acquisition is cheaper than spinning. *)
let max_optimistic = 64

let rec get_opt t ~hook attempt =
  let v1 = Atomic.get t.version in
  if v1 land 1 = 1 then retry t ~hook attempt
  else begin
    (match hook with Some h -> h () | None -> ());
    let x = Atomic.get t.value in
    if Atomic.get t.version = v1 then x else retry t ~hook attempt
  end

and retry t ~hook attempt =
  Atomic.incr t.retry_count;
  if attempt >= max_optimistic then begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> Atomic.get t.value)
  end
  else begin
    Domain.cpu_relax ();
    get_opt t ~hook (attempt + 1)
  end

let get t = get_opt t ~hook:None 0

let write t f =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (* Version goes odd, value is replaced, version goes even: any
         optimistic read overlapping the window sees a version change
         and retries. *)
      Atomic.incr t.version;
      let out = (try Ok (f (Atomic.get t.value)) with e -> Error e) in
      (match out with Ok v -> Atomic.set t.value v | Error _ -> ());
      Atomic.incr t.version;
      match out with Ok _ -> () | Error e -> raise e)

let set t v = write t (fun _ -> v)

let update t f = write t f

let version t = Atomic.get t.version

let retries t = Atomic.get t.retry_count

module For_testing = struct
  let get_with_hook t ~hook = get_opt t ~hook:(Some hook) 0
end
