(** Minimal JSON tree, printer and parser.

    Just enough for the bench harness: run manifests, per-run section
    logs and A/B reports are built as {!t} values and written with
    {!to_string}; the [ab]/[check] subcommands read them back with
    {!parse}. Strict JSON output — non-finite floats are emitted as
    [null] (use {!float} to get that mapping on construction). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float : Stdlib.Float.t -> t
(** [Float f], except NaN and infinities become [Null] (strict JSON has
    no literals for them). *)

val to_string : ?indent:int -> t -> string
(** Pretty-printed with [indent] spaces per level (default 2); a
    trailing newline is appended. [~indent:0] emits a compact
    single-line document with no trailing newline. *)

val write_file : string -> t -> unit
(** [to_string] to a file, atomically enough for the bench (write then
    rename is not needed: single writer per path). *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, trailing
    garbage is an error. Numbers without [.], [e] or [E] parse as [Int]
    (falling back to [Float] on overflow). *)

val parse_file : string -> (t, string) result

(** Accessors — total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj] (first occurrence). *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val to_list : t -> t list option

val get_int : t -> int option
(** [Int], or an integral [Float]. *)

val get_float : t -> float option
(** [Float] or [Int]. *)

val get_bool : t -> bool option
val get_string : t -> string option
