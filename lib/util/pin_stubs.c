/* Optional worker-to-core pinning for Domain_pool workers.
 *
 * Linux-only: pins the *calling thread* (tid 0 in sched_setaffinity)
 * to one CPU. On other platforms the stub reports failure and the
 * caller treats pinning as unavailable.
 */
#ifdef __linux__
#define _GNU_SOURCE
#include <sched.h>
#include <unistd.h>
#endif

#include <caml/mlvalues.h>

CAMLprim value resched_pin_to_core(value core)
{
#ifdef __linux__
    long ncores = sysconf(_SC_NPROCESSORS_ONLN);
    int c = Int_val(core);
    cpu_set_t set;
    if (ncores <= 0 || c < 0)
        return Val_false;
    CPU_ZERO(&set);
    CPU_SET((unsigned)(c % ncores), &set);
    return Val_bool(sched_setaffinity(0, sizeof(set), &set) == 0);
#else
    (void)core;
    return Val_false;
#endif
}

CAMLprim value resched_pin_available(value unit)
{
    (void)unit;
#ifdef __linux__
    return Val_true;
#else
    return Val_false;
#endif
}
