(** Optimistic versioned reads over a single published value.

    A seqlock in the OCaml 5 memory model: writers serialize on an
    internal mutex and bracket each update with two increments of a
    version counter (odd while the update is in flight); readers never
    take the mutex — they sample the version, read the value, and
    re-check the version, retrying if a writer was observed. The value
    itself lives in an [Atomic.t], so even a racing read returns a
    well-formed (if about-to-be-replaced) value; the version protocol
    only decides whether the read linearizes cleanly, never memory
    safety.

    Intended use: publish an immutable snapshot (a persistent map, a
    frozen array) that is read hot and replaced cold. The shared
    floorplan cache reads its exact-entry stripes through this, so
    parallel PA-R workers no longer serialize on stripe mutexes.

    Readers that keep observing in-flight writers fall back to the
    writer mutex after a bounded number of optimistic attempts, so reads
    stay lock-free in the common case but cannot livelock. The total
    number of optimistic retries is counted and exposed for contention
    profiling. *)

type 'a t

val create : 'a -> 'a t

val get : 'a t -> 'a
(** Optimistic read: lock-free unless a writer is observed mid-update
    more than a bounded number of times in a row, in which case the read
    takes the writer mutex (guaranteeing progress). *)

val set : 'a t -> 'a -> unit
(** Replace the published value (writer path: mutex + version bump). *)

val update : 'a t -> ('a -> 'a) -> unit
(** [update t f] atomically replaces the value [v] with [f v] under the
    writer mutex. [f] runs with the mutex held and the version odd, so
    concurrent optimistic readers of this cell retry past it; keep [f]
    cheap. *)

val version : 'a t -> int
(** Current version: even when quiescent, odd while a writer is
    publishing. Two equal even samples bracket a write-free window. *)

val retries : 'a t -> int
(** Total optimistic-read retries since creation — the cell's
    observed read/write contention. *)

(** Test hooks: deterministically interleave a write into a read. *)
module For_testing : sig
  val get_with_hook : 'a t -> hook:(unit -> unit) -> 'a
  (** Like {!get}, but runs [hook] between the version sample and the
      value read on every optimistic attempt. A [hook] that performs a
      {!set} forces the version re-check to fail, exercising the retry
      path without multi-domain timing. *)
end
