(** In-place stable insertion sorts over borrowed scratch segments.

    One shared implementation of the allocation-free sorting loop the
    scheduler's restart kernel uses wherever it used to [List.sort] per
    iteration. Both sorts are {e stable}: elements with equal keys keep
    their input order, exactly like the stdlib's stable merge sorts, so
    swapping a call site onto this module cannot reorder ties. *)

val by_int_key : int array -> base:int -> len:int -> key:(int -> int) -> unit
(** [by_int_key arr ~base ~len ~key] stably sorts the segment
    [arr.(base) .. arr.(base + len - 1)] in place, ascending by
    [key element]. [key] may be re-evaluated on comparisons; it must be
    pure for the duration of the call. Elements outside the segment are
    untouched. *)

val by_float_keys :
  int array -> float array -> base:int -> len:int -> desc:bool -> unit
(** [by_float_keys arr keys ~base ~len ~desc] stably sorts the segment
    [arr.(base) ..] of length [len] by the precomputed parallel keys in
    [keys.(base) ..] (the caller fills [keys.(j)] with the key of
    [arr.(j)] before the call), moving the keys alongside the elements.
    Ascending by default, descending with [desc:true] (ties keep input
    order in both directions). *)
