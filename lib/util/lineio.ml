(* Reusable line-framing buffers for jsonl transports.  See the mli
   for the contract; the invariants maintained here:

   Reader: live bytes occupy [start, start+len); [scanned] counts the
   prefix of the live region already searched for '\n' (so refills
   never rescan); [discard >= 0] means we are inside an oversized line
   that has already been reported, counting dropped bytes until the
   next terminator. *)

let chunk = 4096

module Reader = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;
    mutable len : int;
    mutable scanned : int;
    max_line : int;
    mutable discard : int; (* -1 when framing normally *)
  }

  let create ?(capacity = chunk) ~max_line () =
    {
      buf = Bytes.create (max 64 capacity);
      start = 0;
      len = 0;
      scanned = 0;
      max_line = max 1 max_line;
      discard = -1;
    }

  let buffered t = t.len
  let capacity t = Bytes.length t.buf

  (* Ensure [n] free bytes after the live region, compacting first and
     growing geometrically only when compaction is not enough.  Growth
     is bounded in practice: [next] caps the live region at [max_line]
     before switching to discard mode, so the buffer settles at no
     more than max_line + one chunk. *)
  let reserve t n =
    if Bytes.length t.buf - t.start - t.len < n then begin
      if t.start > 0 then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end;
      if Bytes.length t.buf - t.len < n then begin
        let cap = ref (Bytes.length t.buf) in
        while !cap - t.len < n do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf 0 nb 0 t.len;
        t.buf <- nb
      end
    end

  let fill t f =
    reserve t chunk;
    let n = f t.buf (t.start + t.len) (Bytes.length t.buf - t.start - t.len) in
    if n > 0 then t.len <- t.len + n;
    n

  let take_line t i =
    (* Live bytes [start, start+i) form a line; consume i+1. *)
    let stop =
      if i > 0 && Bytes.get t.buf (t.start + i - 1) = '\r' then i - 1 else i
    in
    let line = Bytes.sub_string t.buf t.start stop in
    t.start <- t.start + i + 1;
    t.len <- t.len - (i + 1);
    t.scanned <- 0;
    if t.len = 0 then t.start <- 0;
    line

  let rec next t =
    if t.discard >= 0 then begin
      (* Drop until the terminator of the already-reported long line. *)
      let found = ref (-1) in
      let i = ref 0 in
      while !found < 0 && !i < t.len do
        if Bytes.get t.buf (t.start + !i) = '\n' then found := !i;
        incr i
      done;
      match !found with
      | -1 ->
          t.discard <- t.discard + t.len;
          t.start <- 0;
          t.len <- 0;
          t.scanned <- 0;
          `Pending
      | i ->
          t.discard <- -1;
          t.start <- t.start + i + 1;
          t.len <- t.len - (i + 1);
          t.scanned <- 0;
          if t.len = 0 then t.start <- 0;
          next t
    end
    else begin
      let found = ref (-1) in
      let i = ref t.scanned in
      while !found < 0 && !i < t.len do
        if Bytes.get t.buf (t.start + !i) = '\n' then found := !i;
        incr i
      done;
      match !found with
      | -1 ->
          t.scanned <- t.len;
          if t.len > t.max_line then begin
            (* One partial line already longer than allowed: report it
               once, then swallow the rest silently. *)
            let n = t.len in
            t.discard <- n;
            t.start <- 0;
            t.len <- 0;
            t.scanned <- 0;
            `Overflow n
          end
          else `Pending
      | i when i > t.max_line ->
          let n = i in
          t.start <- t.start + i + 1;
          t.len <- t.len - (i + 1);
          t.scanned <- 0;
          if t.len = 0 then t.start <- 0;
          `Overflow n
      | i -> `Line (take_line t i)
    end

  let pending_line t =
    if t.discard >= 0 || t.len = 0 then None
    else begin
      let line = Bytes.sub_string t.buf t.start t.len in
      t.start <- 0;
      t.len <- 0;
      t.scanned <- 0;
      Some line
    end
end

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable start : int; mutable len : int }

  let create ?(capacity = chunk) () =
    { buf = Bytes.create (max 64 capacity); start = 0; len = 0 }

  let length t = t.len
  let is_empty t = t.len = 0
  let capacity t = Bytes.length t.buf

  let clear t =
    t.start <- 0;
    t.len <- 0

  let reserve t n =
    if Bytes.length t.buf - t.start - t.len < n then begin
      if t.start > 0 then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end;
      if Bytes.length t.buf - t.len < n then begin
        let cap = ref (Bytes.length t.buf) in
        while !cap - t.len < n do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf 0 nb 0 t.len;
        t.buf <- nb
      end
    end

  let add_line ?max t s =
    let n = String.length s + 1 in
    match max with
    | Some m when t.len + n > m -> false
    | _ ->
        reserve t n;
        Bytes.blit_string s 0 t.buf (t.start + t.len) (String.length s);
        Bytes.set t.buf (t.start + t.len + String.length s) '\n';
        t.len <- t.len + n;
        true

  let write_with t f =
    if t.len = 0 then 0
    else begin
      let n = f t.buf t.start t.len in
      let n = if n < 0 then 0 else min n t.len in
      t.start <- t.start + n;
      t.len <- t.len - n;
      if t.len = 0 then t.start <- 0;
      n
    end
end
