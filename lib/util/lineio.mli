(** Reusable line-framing buffers for jsonl transports.

    Both halves are deliberately fd-free: they exchange bytes with the
    outside world through caller-supplied callbacks, so the module has
    no [unix] dependency and can be driven from tests with plain
    in-memory sources.  A connection allocates one {!Reader.t} and one
    {!Writer.t} at accept time and reuses them for every request — the
    steady state neither allocates per-request buffers nor copies a
    byte more than once on either path (socket -> ring -> line string;
    response string -> ring -> socket). *)

module Reader : sig
  (** Compacting ring buffer with in-place newline scanning and a
      bounded maximum line length.

      The buffer grows geometrically up to [max_line] plus one fill
      chunk and then stabilises; a line longer than [max_line] bytes
      is reported once as [`Overflow] and the remainder of that line
      is discarded silently up to the next ['\n'], after which framing
      resumes.  The scan position is remembered across fills, so each
      input byte is examined exactly once no matter how a line is
      split across reads. *)

  type t

  val create : ?capacity:int -> max_line:int -> unit -> t
  (** [create ?capacity ~max_line ()] makes a reader whose lines may
      span at most [max_line] bytes (exclusive of the terminator).
      [capacity] (default 4096) is the initial buffer size. *)

  val fill : t -> (Bytes.t -> int -> int -> int) -> int
  (** [fill t f] makes room for one chunk and calls [f buf pos len] to
      deposit up to [len] fresh bytes at [pos].  Returns [f]'s result
      (number of bytes deposited; 0 conventionally means EOF).  [f]
      must not retain [buf].  Exceptions from [f] propagate with the
      buffer unchanged. *)

  val next : t -> [ `Line of string | `Overflow of int | `Pending ]
  (** [next t] extracts the next complete line ([`Line], terminator
      and an optional trailing ['\r'] stripped), reports an oversized
      line ([`Overflow n] where [n] is the bytes seen of it so far —
      returned once per oversized line, at detection), or [`Pending]
      when no full line is buffered.  Call until [`Pending] after each
      {!fill}. *)

  val pending_line : t -> string option
  (** [pending_line t] consumes and returns a final unterminated line
      (for EOF flushes).  [None] if the buffer is empty or mid-discard
      of an oversized line. *)

  val buffered : t -> int
  (** Bytes currently buffered and not yet consumed. *)

  val capacity : t -> int
  (** Current backing-buffer size (tests assert it stabilises). *)
end

module Writer : sig
  (** Coalescing response buffer: many [add_line]s drain through
      single contiguous writes. *)

  type t

  val create : ?capacity:int -> unit -> t

  val add_line : ?max:int -> t -> string -> bool
  (** [add_line ?max t s] appends [s] followed by ['\n'].  When [max]
      is given and the buffered total would exceed it, the buffer is
      left unchanged and [false] is returned (slow-consumer guard);
      otherwise [true]. *)

  val write_with : t -> (Bytes.t -> int -> int -> int) -> int
  (** [write_with t f] offers the buffered bytes as one contiguous
      [f buf pos len] call and consumes however many bytes [f] reports
      written (short writes leave the rest buffered).  Returns the
      consumed count; 0 when nothing is buffered.  Exceptions from [f]
      propagate with the buffer unchanged. *)

  val length : t -> int
  val is_empty : t -> bool

  val clear : t -> unit
  (** Drop all buffered bytes (used when abandoning a dead peer). *)

  val capacity : t -> int
end
