let available_cores () = Domain.recommended_domain_count ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let run ~jobs f =
  if jobs < 1 then invalid_arg "Domain_pool.run: jobs must be >= 1";
  if jobs = 1 then [| f 0 |]
  else begin
    let others =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> f (k + 1)))
    in
    (* Run job 0 here, but join every spawned domain before re-raising so
       a failing job cannot leak running domains. *)
    let first = try Ok (f 0) with e -> Error e in
    let rest =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) others
    in
    let all = Array.append [| first |] rest in
    Array.map (function Ok v -> v | Error e -> raise e) all
  end

(* ------------------------------------------------------------------ *)
(* Honest parallelism planning                                         *)

type plan = { requested : int; effective : int; cores : int }

let plan_jobs ?(allow_oversubscribe = false) ~requested () =
  if requested < 1 then
    invalid_arg "Domain_pool.plan_jobs: requested must be >= 1";
  let cores = available_cores () in
  let effective =
    if allow_oversubscribe then requested else Stdlib.min requested cores
  in
  { requested; effective = Stdlib.max 1 effective; cores }

let downgraded p = p.effective < p.requested

let warn_downgrade ?(out = stderr) ~label p =
  if downgraded p then begin
    Printf.fprintf out
      "\n\
       !!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n\
       !! PARALLELISM DOWNGRADED: %s\n\
       !! requested jobs=%d but only %d core(s) are available;\n\
       !! running with jobs=%d instead.\n\
       !! This is NOT a parallel run of the requested width — do not\n\
       !! report its numbers as a jobs=%d comparison.\n\
       !!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n\
       %!"
      label p.requested p.cores p.effective p.requested
  end

(* ------------------------------------------------------------------ *)
(* Worker-to-core pinning (Linux sched_setaffinity; no-op elsewhere)   *)

external pin_to_core_stub : int -> bool = "resched_pin_to_core"
external pin_available_stub : unit -> bool = "resched_pin_available"

let pin_available () = pin_available_stub ()

let pin_to_core core =
  if core < 0 then invalid_arg "Domain_pool.pin_to_core: negative core";
  pin_to_core_stub core

let env_pin_default () =
  match Sys.getenv_opt "RESCHED_PIN" with
  | Some ("1" | "true" | "yes") -> pin_available ()
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Persistent pool                                                     *)

module Pool = struct
  type state = Idle | Dispatched of (int -> unit) | Stopping

  type t = {
    p_jobs : int;
    lock : Mutex.t;
    start : Condition.t;  (* new task or shutdown *)
    finished : Condition.t;  (* a worker completed the current task *)
    mutable state : state;
    mutable generation : int;  (* bumped per dispatch *)
    mutable pending : int;  (* resident workers still on the current task *)
    mutable busy : bool;  (* a map is in flight (reentrancy guard) *)
    mutable shut : bool;
    mutable caller_pinned : bool;
    pin : bool;
    mutable domains : unit Domain.t array;
  }

  let worker_loop t i =
    if t.pin then ignore (pin_to_core i);
    let rec wait_for_work seen_gen =
      Mutex.lock t.lock;
      while
        (match t.state with Stopping -> false | Idle | Dispatched _ -> true)
        && t.generation = seen_gen
      do
        Condition.wait t.start t.lock
      done;
      match t.state with
      | Stopping ->
        Mutex.unlock t.lock;
        ()
      | Idle ->
        (* generation moved but the task is already gone: a spurious
           wake-up after completion; keep waiting on the new generation. *)
        let gen = t.generation in
        Mutex.unlock t.lock;
        wait_for_work gen
      | Dispatched task ->
        let gen = t.generation in
        Mutex.unlock t.lock;
        (* [task] never raises: [map] wraps the job in a result cell. *)
        task i;
        Mutex.lock t.lock;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.lock;
        wait_for_work gen
    in
    wait_for_work 0

  let create ?pin ~jobs () =
    if jobs < 1 then invalid_arg "Domain_pool.Pool.create: jobs must be >= 1";
    let pin =
      match pin with Some p -> p && pin_available () | None -> env_pin_default ()
    in
    let t =
      {
        p_jobs = jobs;
        lock = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        state = Idle;
        generation = 0;
        pending = 0;
        busy = false;
        shut = false;
        caller_pinned = false;
        pin;
        domains = [||];
      }
    in
    t.domains <-
      Array.init (jobs - 1) (fun k ->
          Domain.spawn (fun () -> worker_loop t (k + 1)));
    t

  let jobs t = t.p_jobs

  let map t f =
    with_lock t.lock (fun () ->
        if t.shut then invalid_arg "Domain_pool.Pool.map: pool is shut down";
        if t.busy then invalid_arg "Domain_pool.Pool.map: pool is busy";
        t.busy <- true);
    if t.pin && not t.caller_pinned then begin
      ignore (pin_to_core 0);
      t.caller_pinned <- true
    end;
    let results = Array.make t.p_jobs None in
    let task i = results.(i) <- Some (try Ok (f i) with e -> Error e) in
    if t.p_jobs > 1 then
      with_lock t.lock (fun () ->
          t.state <- Dispatched task;
          t.pending <- t.p_jobs - 1;
          t.generation <- t.generation + 1;
          Condition.broadcast t.start);
    (* The caller is always worker 0 (like [run]): sequential replays and
       domain-local caches behave identically whether or not a pool is
       in use. *)
    task 0;
    if t.p_jobs > 1 then
      with_lock t.lock (fun () ->
          while t.pending > 0 do
            Condition.wait t.finished t.lock
          done;
          t.state <- Idle);
    with_lock t.lock (fun () -> t.busy <- false);
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index ran *))
      results

  let run_chunked t ?chunk ~n body =
    if n < 0 then invalid_arg "Domain_pool.Pool.run_chunked: n must be >= 0";
    if n > 0 then begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Domain_pool.Pool.run_chunked: chunk must be >= 1"
        | None -> Stdlib.max 1 (n / (t.p_jobs * 8))
      in
      let cursor = Atomic.make 0 in
      ignore
        (map t (fun _ ->
             let continue = ref true in
             while !continue do
               let lo = Atomic.fetch_and_add cursor chunk in
               if lo >= n then continue := false
               else
                 for i = lo to Stdlib.min (lo + chunk) n - 1 do
                   body i
                 done
             done))
    end

  let shutdown t =
    let joinable =
      with_lock t.lock (fun () ->
          if t.shut then false
          else begin
            t.shut <- true;
            t.state <- Stopping;
            t.generation <- t.generation + 1;
            Condition.broadcast t.start;
            true
          end)
    in
    if joinable then Array.iter Domain.join t.domains
end
