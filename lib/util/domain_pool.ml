let available_cores () = Domain.recommended_domain_count ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let run ~jobs f =
  if jobs < 1 then invalid_arg "Domain_pool.run: jobs must be >= 1";
  if jobs = 1 then [| f 0 |]
  else begin
    let others =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> f (k + 1)))
    in
    (* Run job 0 here, but join every spawned domain before re-raising so
       a failing job cannot leak running domains. *)
    let first = try Ok (f 0) with e -> Error e in
    let rest =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) others
    in
    let all = Array.append [| first |] rest in
    Array.map (function Ok v -> v | Error e -> raise e) all
  end
