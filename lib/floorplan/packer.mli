(** Search for a non-overlapping assignment of one feasible placement to
    every reconfigurable region. *)

type engine =
  | Backtracking_v1
      (** The original greedy + naive backtracking search, kept as the
          oracle for equivalence tests. *)
  | Column_interval
      (** Column-interval packer: prefix-sum resource vectors, a
          cross-call memo of dominance-pruned candidate arrays,
          tile-demand lower bounds, symmetry breaking over identical
          demands, bitset occupancy, an infeasible-suffix memo and a
          deterministic restart portfolio over several region orders.
          Searches the same candidate universe as [Backtracking_v1] and
          falls back to it on budget exhaustion, so verdicts never
          contradict v1 and are never less decisive — only [Unknown]s
          can be refined to decisive answers. *)

type outcome =
  | Placed of Placement.rect array
      (** one placement per input region, in input order *)
  | Infeasible  (** exhaustively proven: no packing exists *)
  | Unknown  (** node budget exhausted before a conclusion *)

val capacity_bounds_ok :
  Resched_fabric.Device.t -> Resched_fabric.Resource.t array -> bool
(** Cheap necessary conditions for a packing to exist: per-kind
    column x row tile budgets and a total-area bound over each region's
    minimal rectangular footprint. [false] is a proof of infeasibility;
    [true] promises nothing. Used by [Column_interval] as an early exit
    and by {!Floorplanner.quick_capacity_check}. *)

val pack : ?engine:engine -> ?node_limit:int -> Resched_fabric.Device.t ->
  Resched_fabric.Resource.t array -> outcome
(** [pack device needs] searches for placements of all regions
    (default engine [Column_interval]). [node_limit] (default 200_000)
    bounds search nodes. Raises [Invalid_argument] if any requirement is
    zero. *)
