(** MILP formulation of the region-packing feasibility problem, in the
    spirit of Rabozzi et al. [3]: one binary variable per (region,
    feasible placement) pair, an assignment constraint per region and a
    tile-occupancy constraint per column x clock-region tile (at most one
    placement covers any tile). As in the paper, no meaningful objective
    is needed — we only check existence — but we minimize total occupied
    area to keep the solver deterministic. *)

type outcome =
  | Placed of Placement.rect array
  | Infeasible
  | Unknown  (** branch-and-bound node budget exhausted *)

val candidates_per_region : int
(** Cap on placements offered per region to the MILP (snuggest first);
    keeps the model size tractable. When any region's candidate list was
    truncated by this cap, a model-level infeasibility is reported as
    [Unknown] rather than [Infeasible], since the dropped placements
    might still admit a packing. *)

val pack : ?node_limit:int -> ?jobs:int -> Resched_fabric.Device.t ->
  Resched_fabric.Resource.t array -> outcome
(** Build and solve the packing MILP ([node_limit] defaults to 2_000
    branch-and-bound nodes — each node is one LP solve, warm-started
    from its parent's basis; [jobs] parallelizes the search). *)
