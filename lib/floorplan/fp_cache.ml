module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource
module Domain_pool = Resched_util.Domain_pool

type entry = {
  verdict : Floorplanner.verdict;  (** placements in sorted-needs order *)
  engine_used : Floorplanner.engine;
}

type t = {
  table : (string * string, entry) Hashtbl.t;  (** (device key, needs key) *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
}

type stats = { hits : int; misses : int; inserts : int }

let create () =
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    inserts = 0;
  }

let stats t =
  Domain_pool.with_lock t.lock (fun () ->
      { hits = t.hits; misses = t.misses; inserts = t.inserts })

let clear t =
  Domain_pool.with_lock t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.inserts <- 0)

(* Devices are keyed by name plus a geometry digest: presets have unique
   names, but [Device.make] can reuse a name with a different fabric. *)
let device_key device =
  Printf.sprintf "%s#%x" device.Device.name
    (Hashtbl.hash (device.Device.columns, device.Device.rows))

let invalidate_device t device =
  let dk = device_key device in
  Domain_pool.with_lock t.lock (fun () ->
      Hashtbl.filter_map_inplace
        (fun (d, _) entry -> if String.equal d dk then None else Some entry)
        t.table)

let engine_tag = function
  | Floorplanner.Backtracking -> 'b'
  | Floorplanner.Milp -> 'm'
  | Floorplanner.Hybrid -> 'h'

(* [order.(k)] is the original index of the k-th need in canonical order;
   sorting by [Resource.compare] (ties by index, for stability) makes any
   permutation of the same needs hash to the same key. *)
let canonicalize needs =
  let n = Array.length needs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Resource.compare needs.(i) needs.(j) in
      if c <> 0 then c else compare i j)
    order;
  let sorted = Array.map (fun i -> needs.(i)) order in
  (sorted, order)

let needs_key ~engine ~node_limit sorted =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (engine_tag engine);
  (match node_limit with
  | None -> Buffer.add_char buf '*'
  | Some l -> Buffer.add_string buf (string_of_int l));
  Array.iter
    (fun (r : Resource.t) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int r.Resource.clb);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int r.Resource.bram);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int r.Resource.dsp))
    sorted;
  Buffer.contents buf

(* Cached placements follow the sorted order; hand them back in the
   caller's order ([sorted.(k) = needs.(order.(k))], so the rectangle
   placed for slot [k] covers original region [order.(k)]). *)
let unpermute order = function
  | Floorplanner.Feasible [||] -> Floorplanner.Feasible [||]
  | Floorplanner.Feasible placements ->
    let out = Array.make (Array.length placements) placements.(0) in
    Array.iteri (fun k rect -> out.(order.(k)) <- rect) placements;
    Floorplanner.Feasible out
  | (Floorplanner.Infeasible | Floorplanner.Unknown) as v -> v

let check t ?(engine = Floorplanner.Backtracking) ?node_limit device needs =
  if Array.length needs = 0 then
    Floorplanner.check ~engine ?node_limit device needs
  else begin
    let t0 = Unix.gettimeofday () in
    let sorted, order = canonicalize needs in
    let key = (device_key device, needs_key ~engine ~node_limit sorted) in
    let cached =
      Domain_pool.with_lock t.lock (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some e ->
            t.hits <- t.hits + 1;
            Some e
          | None ->
            t.misses <- t.misses + 1;
            None)
    in
    match cached with
    | Some e ->
      {
        Floorplanner.verdict = unpermute order e.verdict;
        engine_used = e.engine_used;
        elapsed = Unix.gettimeofday () -. t0;
      }
    | None ->
      (* Run outside the lock: feasibility is expensive and other workers
         must not stall behind it. A racing duplicate check is harmless
         (both compute the same deterministic verdict). *)
      let report = Floorplanner.check ~engine ?node_limit device sorted in
      Domain_pool.with_lock t.lock (fun () ->
          if not (Hashtbl.mem t.table key) then begin
            Hashtbl.replace t.table key
              {
                verdict = report.Floorplanner.verdict;
                engine_used = report.Floorplanner.engine_used;
              };
            t.inserts <- t.inserts + 1
          end);
      { report with Floorplanner.verdict = unpermute order report.verdict }
  end
