module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource
module Domain_pool = Resched_util.Domain_pool

type entry = {
  verdict : Floorplanner.verdict;  (** placements in sorted-needs order *)
  engine_used : Floorplanner.engine;
}

type stats = { hits : int; sub_hits : int; misses : int; inserts : int }

let zero_stats = { hits = 0; sub_hits = 0; misses = 0; inserts = 0 }

let diff a b =
  {
    hits = a.hits - b.hits;
    sub_hits = a.sub_hits - b.sub_hits;
    misses = a.misses - b.misses;
    inserts = a.inserts - b.inserts;
  }

(* Exact stripes: the permutation-invariant exact-key table, sharded by
   full-key hash. All counters live here (a subsumption hit is counted on
   the stripe its exact key hashes to, so [stripe_stats] sums to
   [stats]). *)
type exact_stripe = {
  e_lock : Mutex.t;
  e_table : (string * string, entry) Hashtbl.t;  (* (device key, needs key) *)
  mutable e_hits : int;
  mutable e_sub_hits : int;
  mutable e_misses : int;
  mutable e_inserts : int;
}

(* Subsumption groups: decisive verdicts for one (device, engine,
   node-limit) class, kept as capped antichains under injective
   dominance embedding of canonically sorted needs. Feasibility is
   antimonotone in demands, so a feasible verdict at [s] answers any
   query that embeds into [s] — each query need charged to a distinct
   stored need that covers it; the matched subset of the stored rects
   (disjoint, each big enough) is a valid placement for the query. An
   infeasible verdict at [s] answers any query [s] embeds into (a
   packing of the query would contain one of [s]). [Unknown] never
   enters. *)
type feas_entry = {
  f_needs : Resource.t array;  (* canonically sorted *)
  f_placements : Placement.rect array;  (* in sorted-needs order *)
  f_engine : Floorplanner.engine;
}

type group = {
  mutable g_feas : feas_entry list;
  mutable g_infeas : Resource.t array list;
}

type sub_stripe = {
  s_lock : Mutex.t;
  s_groups : (string, group) Hashtbl.t;  (* group key -> antichains *)
}

type t = {
  exact : exact_stripe array;
  sub : sub_stripe array;
  debug : bool;  (** revalidate subsumption-derived placements *)
}

let antichain_cap = 64

let default_stripes = 16

let create ?(stripes = default_stripes) ?debug () =
  let stripes = Stdlib.max 1 stripes in
  let debug =
    match debug with
    | Some d -> d
    | None -> (
      match Sys.getenv_opt "RESCHED_FP_DEBUG" with
      | Some ("1" | "true" | "yes") -> true
      | _ -> false)
  in
  {
    exact =
      Array.init stripes (fun _ ->
          {
            e_lock = Mutex.create ();
            e_table = Hashtbl.create 64;
            e_hits = 0;
            e_sub_hits = 0;
            e_misses = 0;
            e_inserts = 0;
          });
    sub =
      Array.init stripes (fun _ ->
          { s_lock = Mutex.create (); s_groups = Hashtbl.create 32 });
    debug;
  }

let stripe_stats t =
  Array.map
    (fun s ->
      Domain_pool.with_lock s.e_lock (fun () ->
          {
            hits = s.e_hits;
            sub_hits = s.e_sub_hits;
            misses = s.e_misses;
            inserts = s.e_inserts;
          }))
    t.exact

let stats t =
  Array.fold_left
    (fun acc s ->
      {
        hits = acc.hits + s.hits;
        sub_hits = acc.sub_hits + s.sub_hits;
        misses = acc.misses + s.misses;
        inserts = acc.inserts + s.inserts;
      })
    zero_stats (stripe_stats t)

let clear t =
  Array.iter
    (fun s ->
      Domain_pool.with_lock s.e_lock (fun () ->
          Hashtbl.reset s.e_table;
          s.e_hits <- 0;
          s.e_sub_hits <- 0;
          s.e_misses <- 0;
          s.e_inserts <- 0))
    t.exact;
  Array.iter
    (fun s ->
      Domain_pool.with_lock s.s_lock (fun () -> Hashtbl.reset s.s_groups))
    t.sub

(* Devices are keyed by name plus a geometry digest: presets have unique
   names, but [Device.make] can reuse a name with a different fabric. *)
let device_key device =
  Printf.sprintf "%s#%x" device.Device.name
    (Hashtbl.hash (device.Device.columns, device.Device.rows))

let invalidate_device t device =
  let dk = device_key device in
  Array.iter
    (fun s ->
      Domain_pool.with_lock s.e_lock (fun () ->
          Hashtbl.filter_map_inplace
            (fun (d, _) entry -> if String.equal d dk then None else Some entry)
            s.e_table))
    t.exact;
  let prefix = dk ^ "\x00" in
  Array.iter
    (fun s ->
      Domain_pool.with_lock s.s_lock (fun () ->
          Hashtbl.filter_map_inplace
            (fun gk group ->
              if String.starts_with ~prefix gk then None else Some group)
            s.s_groups))
    t.sub

let engine_tag = function
  | Floorplanner.Backtracking -> 'b'
  | Floorplanner.Backtracking_v1 -> 'o'
  | Floorplanner.Milp -> 'm'
  | Floorplanner.Hybrid -> 'h'

(* [order.(k)] is the original index of the k-th need in canonical order;
   sorting by [Resource.compare] (ties by index, for stability) makes any
   permutation of the same needs hash to the same key. *)
let canonicalize needs =
  let n = Array.length needs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Resource.compare needs.(i) needs.(j) in
      if c <> 0 then c else compare i j)
    order;
  let sorted = Array.map (fun i -> needs.(i)) order in
  (sorted, order)

let needs_key ~engine ~node_limit sorted =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (engine_tag engine);
  (match node_limit with
  | None -> Buffer.add_char buf '*'
  | Some l -> Buffer.add_string buf (string_of_int l));
  Array.iter
    (fun (r : Resource.t) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int r.Resource.clb);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int r.Resource.bram);
      Buffer.add_char buf '.';
      Buffer.add_string buf (string_of_int r.Resource.dsp))
    sorted;
  Buffer.contents buf

let group_key ~dk ~engine ~node_limit =
  Printf.sprintf "%s\x00%c%s" dk (engine_tag engine)
    (match node_limit with None -> "*" | Some l -> string_of_int l)

let exact_stripe_of t key =
  t.exact.(Hashtbl.hash key mod Array.length t.exact)

let sub_stripe_of t gk = t.sub.(Hashtbl.hash gk mod Array.length t.sub)

(* Injective dominance embedding: match every need of [small] to a
   *distinct* need of [big] that covers it component-wise, returning the
   assignment ([assign.(i)] = index in [big] charged for [small.(i)]).
   Greedy (largest small needs claim the first unused covering big need,
   with [big] canonically sorted ascending), so it can miss a matching a
   full bipartite search would find — that only costs cache hits, never
   soundness: any embedding returned is a valid witness. The relation is
   transitive (compose the injections), which the antichain maintenance
   below relies on. *)
let embeds small big =
  let n = Array.length small and m = Array.length big in
  if n > m then None
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (Resource.total_units small.(b))
          (Resource.total_units small.(a)))
      order;
    let used = Array.make m false in
    let assign = Array.make n (-1) in
    let ok = ref true in
    Array.iter
      (fun i ->
        if !ok then begin
          let j = ref 0 in
          while
            !j < m
            && (used.(!j) || not (Resource.fits small.(i) ~within:big.(!j)))
          do
            incr j
          done;
          if !j = m then ok := false
          else begin
            used.(!j) <- true;
            assign.(i) <- !j
          end
        end)
      order;
    if !ok then Some assign else None
  end

let embeds_le a b = embeds a b <> None

(* Antichain insertion. Feasible entries: keep only maximal need-sets
   (a dominated set is already answered by its dominator). Infeasible
   entries: keep only minimal ones. The cap bounds memory; eviction drops
   the oldest survivors, which only costs future hits. *)
let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let add_feas group entry =
  if
    not
      (List.exists
         (fun f -> embeds_le entry.f_needs f.f_needs)
         group.g_feas)
  then begin
    let kept =
      List.filter
        (fun f -> not (embeds_le f.f_needs entry.f_needs))
        group.g_feas
    in
    group.g_feas <- take antichain_cap (entry :: kept)
  end

let add_infeas group needs =
  if not (List.exists (fun s -> embeds_le s needs) group.g_infeas) then begin
    let kept =
      List.filter (fun s -> not (embeds_le needs s)) group.g_infeas
    in
    group.g_infeas <- take antichain_cap (needs :: kept)
  end

let sub_insert t ~gk ~sorted (report : Floorplanner.report) =
  match report.verdict with
  | Floorplanner.Unknown -> ()
  | Floorplanner.Feasible placements ->
    let stripe = sub_stripe_of t gk in
    Domain_pool.with_lock stripe.s_lock (fun () ->
        let group =
          match Hashtbl.find_opt stripe.s_groups gk with
          | Some g -> g
          | None ->
            let g = { g_feas = []; g_infeas = [] } in
            Hashtbl.replace stripe.s_groups gk g;
            g
        in
        add_feas group
          {
            f_needs = sorted;
            f_placements = placements;
            f_engine = report.engine_used;
          })
  | Floorplanner.Infeasible ->
    let stripe = sub_stripe_of t gk in
    Domain_pool.with_lock stripe.s_lock (fun () ->
        let group =
          match Hashtbl.find_opt stripe.s_groups gk with
          | Some g -> g
          | None ->
            let g = { g_feas = []; g_infeas = [] } in
            Hashtbl.replace stripe.s_groups gk g;
            g
        in
        add_infeas group sorted)

(* Probe the subsumption index for a derived verdict on [sorted]. *)
let sub_lookup t ~gk ~sorted =
  let stripe = sub_stripe_of t gk in
  Domain_pool.with_lock stripe.s_lock (fun () ->
      match Hashtbl.find_opt stripe.s_groups gk with
      | None -> None
      | Some group -> (
        let feas =
          List.find_map
            (fun f ->
              match embeds sorted f.f_needs with
              | Some assign -> Some (f, assign)
              | None -> None)
            group.g_feas
        in
        match feas with
        | Some (f, assign) ->
          (* Hand back only the matched subset of the stored rects, in
             the query's sorted order. *)
          let placements =
            Array.init (Array.length sorted) (fun i ->
                f.f_placements.(assign.(i)))
          in
          Some
            {
              verdict = Floorplanner.Feasible placements;
              engine_used = f.f_engine;
            }
        | None ->
          if List.exists (fun s -> embeds_le s sorted) group.g_infeas then
            Some
              {
                verdict = Floorplanner.Infeasible;
                engine_used = Floorplanner.Backtracking;
              }
          else None))

(* Cached placements follow the sorted order; hand them back in the
   caller's order ([sorted.(k) = needs.(order.(k))], so the rectangle
   placed for slot [k] covers original region [order.(k)]). *)
let unpermute order = function
  | Floorplanner.Feasible [||] -> Floorplanner.Feasible [||]
  | Floorplanner.Feasible placements ->
    let out = Array.make (Array.length placements) placements.(0) in
    Array.iteri (fun k rect -> out.(order.(k)) <- rect) placements;
    Floorplanner.Feasible out
  | (Floorplanner.Infeasible | Floorplanner.Unknown) as v -> v

let check t ?(engine = Floorplanner.Backtracking) ?node_limit device needs =
  if Array.length needs = 0 then
    Floorplanner.check ~engine ?node_limit device needs
  else begin
    let t0 = Unix.gettimeofday () in
    let dk = device_key device in
    let sorted, order = canonicalize needs in
    let key = (dk, needs_key ~engine ~node_limit sorted) in
    let stripe = exact_stripe_of t key in
    let cached =
      Domain_pool.with_lock stripe.e_lock (fun () ->
          match Hashtbl.find_opt stripe.e_table key with
          | Some e ->
            stripe.e_hits <- stripe.e_hits + 1;
            Some e
          | None -> None)
    in
    match cached with
    | Some e ->
      {
        Floorplanner.verdict = unpermute order e.verdict;
        engine_used = e.engine_used;
        elapsed = Unix.gettimeofday () -. t0;
      }
    | None -> (
      let gk = group_key ~dk ~engine ~node_limit in
      match sub_lookup t ~gk ~sorted with
      | Some derived ->
        (match derived.verdict with
        | Floorplanner.Feasible placements when t.debug ->
          (* Debug builds re-verify reused placements against the weaker
             query before trusting the subsumption argument. *)
          (match Floorplanner.validate device ~needs:sorted placements with
          | Ok () -> ()
          | Error msg ->
            invalid_arg ("Fp_cache: invalid subsumed placement: " ^ msg))
        | _ -> ());
        (* Promote the derived verdict to an exact entry so the next
           identical query is an O(1) exact hit; promotions are not
           counted as [inserts] (no fresh check ran). *)
        Domain_pool.with_lock stripe.e_lock (fun () ->
            stripe.e_sub_hits <- stripe.e_sub_hits + 1;
            if not (Hashtbl.mem stripe.e_table key) then
              Hashtbl.replace stripe.e_table key derived);
        {
          Floorplanner.verdict = unpermute order derived.verdict;
          engine_used = derived.engine_used;
          elapsed = Unix.gettimeofday () -. t0;
        }
      | None ->
        (* Run outside every lock: feasibility is expensive and other
           workers must not stall behind it. A racing duplicate check is
           harmless (both compute the same deterministic verdict). *)
        let report = Floorplanner.check ~engine ?node_limit device sorted in
        Domain_pool.with_lock stripe.e_lock (fun () ->
            stripe.e_misses <- stripe.e_misses + 1;
            if not (Hashtbl.mem stripe.e_table key) then begin
              Hashtbl.replace stripe.e_table key
                {
                  verdict = report.Floorplanner.verdict;
                  engine_used = report.Floorplanner.engine_used;
                };
              stripe.e_inserts <- stripe.e_inserts + 1
            end);
        sub_insert t ~gk ~sorted report;
        { report with Floorplanner.verdict = unpermute order report.verdict })
  end
