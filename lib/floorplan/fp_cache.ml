module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource
module Domain_pool = Resched_util.Domain_pool
module Seqlock = Resched_util.Seqlock
module Smap = Map.Make (String)

type entry = {
  verdict : Floorplanner.verdict;  (** placements in sorted-needs order *)
  engine_used : Floorplanner.engine;
}

type stats = {
  l1_hits : int;
  hits : int;
  sub_hits : int;
  misses : int;
  inserts : int;
}

let zero_stats = { l1_hits = 0; hits = 0; sub_hits = 0; misses = 0; inserts = 0 }

let diff a b =
  {
    l1_hits = a.l1_hits - b.l1_hits;
    hits = a.hits - b.hits;
    sub_hits = a.sub_hits - b.sub_hits;
    misses = a.misses - b.misses;
    inserts = a.inserts - b.inserts;
  }

let lookups s = s.l1_hits + s.hits + s.sub_hits + s.misses

let hit_rate s =
  let n = lookups s in
  if n = 0 then 0.
  else float_of_int (s.l1_hits + s.hits + s.sub_hits) /. float_of_int n

(* Exact stripes: the permutation-invariant exact-key table, sharded by
   fused-key hash. The entry map is an immutable snapshot published
   through a seqlock — lookups never block, writers replace the snapshot
   under the seqlock's mutex. All L2 counters live here (a subsumption
   hit is counted on the stripe its exact key hashes to, so
   [stripe_stats] sums to [stats] minus L1 hits). *)
type exact_stripe = {
  e_map : entry Smap.t Seqlock.t;  (* fused device^\x01^needs key *)
  e_hits : int Atomic.t;
  e_sub_hits : int Atomic.t;
  e_misses : int Atomic.t;
  e_inserts : int Atomic.t;
}

(* Subsumption groups: decisive verdicts for one (device, engine,
   node-limit) class, kept as capped antichains under injective
   dominance embedding of canonically sorted needs. Feasibility is
   antimonotone in demands, so a feasible verdict at [s] answers any
   query that embeds into [s] — each query need charged to a distinct
   stored need that covers it; the matched subset of the stored rects
   (disjoint, each big enough) is a valid placement for the query. An
   infeasible verdict at [s] answers any query [s] embeds into (a
   packing of the query would contain one of [s]). [Unknown] never
   enters. *)
type feas_entry = {
  f_needs : Resource.t array;  (* canonically sorted *)
  f_placements : Placement.rect array;  (* in sorted-needs order *)
  f_engine : Floorplanner.engine;
}

type group = {
  mutable g_feas : feas_entry list;
  mutable g_infeas : Resource.t array list;
}

type sub_stripe = {
  s_lock : Mutex.t;
  s_groups : (string, group) Hashtbl.t;  (* group key -> antichains *)
}

(* Each domain's private memo in front of the shared stripes. Owned
   (table and epoch stamp) exclusively by one domain; the hit counter is
   atomic only so [stats] and [clear] on other domains can read/reset it
   without a data race — the owner is its sole incrementer, so the
   atomic is never contended. *)
type l1 = {
  mutable l1_epoch : int;  (* cache epoch this memo is valid for *)
  l1_tbl : (string, entry) Hashtbl.t;
  l1_hits_n : int Atomic.t;
}

type t = {
  exact : exact_stripe array;
  sub : sub_stripe array;
  subsumption : bool;
      (* when false the dominance index is never consulted or fed:
         every verdict handed out is one the engine computed for that
         exact key, so the cache is verdict-transparent (pure
         memoization) whatever its contents *)
  debug : bool;  (** revalidate subsumption-derived placements *)
  l1_capacity : int;  (* 0 disables the L1 *)
  epoch : int Atomic.t;
  l1_key : l1 Domain.DLS.key;
  l1s : l1 list ref;  (* every domain's memo, for [stats] *)
  l1s_lock : Mutex.t;
  dk_memo : (Device.t * string) option Atomic.t;
      (* last device key, by physical identity — building the key hashes
         the device geometry, far too slow for the per-move query rate
         of the delta kernel (a benign race: both sides write equal
         values for equal devices) *)
}

let antichain_cap = 64

let default_stripes = 16

let default_l1_capacity = 4096

let create ?(stripes = default_stripes) ?(l1_capacity = default_l1_capacity)
    ?(subsumption = true) ?debug () =
  let stripes = Stdlib.max 1 stripes in
  let l1_capacity = Stdlib.max 0 l1_capacity in
  let debug =
    match debug with
    | Some d -> d
    | None -> (
      match Sys.getenv_opt "RESCHED_FP_DEBUG" with
      | Some ("1" | "true" | "yes") -> true
      | _ -> false)
  in
  let epoch = Atomic.make 0 in
  let l1s = ref [] in
  let l1s_lock = Mutex.create () in
  let l1_key =
    (* Runs on a domain's first lookup through this cache; registering
       the memo lets [stats] fold in hits from every domain. *)
    Domain.DLS.new_key (fun () ->
        let m =
          {
            l1_epoch = Atomic.get epoch;
            l1_tbl = Hashtbl.create (Stdlib.min 64 (Stdlib.max 1 l1_capacity));
            l1_hits_n = Atomic.make 0;
          }
        in
        Domain_pool.with_lock l1s_lock (fun () -> l1s := m :: !l1s);
        m)
  in
  {
    exact =
      Array.init stripes (fun _ ->
          {
            e_map = Seqlock.create Smap.empty;
            e_hits = Atomic.make 0;
            e_sub_hits = Atomic.make 0;
            e_misses = Atomic.make 0;
            e_inserts = Atomic.make 0;
          });
    sub =
      Array.init stripes (fun _ ->
          { s_lock = Mutex.create (); s_groups = Hashtbl.create 32 });
    subsumption;
    debug;
    l1_capacity;
    epoch;
    l1_key;
    l1s;
    l1s_lock;
    dk_memo = Atomic.make None;
  }

let epoch t = Atomic.get t.epoch

let stripe_stats t =
  Array.map
    (fun s ->
      {
        l1_hits = 0;
        hits = Atomic.get s.e_hits;
        sub_hits = Atomic.get s.e_sub_hits;
        misses = Atomic.get s.e_misses;
        inserts = Atomic.get s.e_inserts;
      })
    t.exact

let stripe_read_retries t = Array.map (fun s -> Seqlock.retries s.e_map) t.exact

let stats t =
  let l2 =
    Array.fold_left
      (fun acc s ->
        {
          acc with
          hits = acc.hits + s.hits;
          sub_hits = acc.sub_hits + s.sub_hits;
          misses = acc.misses + s.misses;
          inserts = acc.inserts + s.inserts;
        })
      zero_stats (stripe_stats t)
  in
  let l1_hits =
    Domain_pool.with_lock t.l1s_lock (fun () ->
        List.fold_left (fun acc m -> acc + Atomic.get m.l1_hits_n) 0 !(t.l1s))
  in
  { l2 with l1_hits }

let bump_epoch t = Atomic.incr t.epoch

let clear t =
  Array.iter
    (fun s ->
      Seqlock.set s.e_map Smap.empty;
      Atomic.set s.e_hits 0;
      Atomic.set s.e_sub_hits 0;
      Atomic.set s.e_misses 0;
      Atomic.set s.e_inserts 0)
    t.exact;
  Array.iter
    (fun s ->
      Domain_pool.with_lock s.s_lock (fun () -> Hashtbl.reset s.s_groups))
    t.sub;
  Domain_pool.with_lock t.l1s_lock (fun () ->
      List.iter (fun m -> Atomic.set m.l1_hits_n 0) !(t.l1s));
  (* Every domain flushes its L1 table itself on next use: resetting a
     foreign domain's Hashtbl here would race with its owner. *)
  bump_epoch t

(* Devices are keyed by name plus a geometry digest: presets have unique
   names, but [Device.make] can reuse a name with a different fabric. *)
let device_key device =
  Printf.sprintf "%s#%x" device.Device.name
    (Hashtbl.hash (device.Device.columns, device.Device.rows))

(* Exact keys fuse the device and needs keys into one string so the L2
   snapshot can be a plain [Map.Make(String)]; '\x01' cannot start a
   needs key (those begin with an engine tag letter). *)
let fused_key dk nk = dk ^ "\x01" ^ nk

let invalidate_device t device =
  let dk = device_key device in
  let eprefix = dk ^ "\x01" in
  Array.iter
    (fun s ->
      Seqlock.update s.e_map (fun m ->
          Smap.filter (fun k _ -> not (String.starts_with ~prefix:eprefix k)) m))
    t.exact;
  let prefix = dk ^ "\x00" in
  Array.iter
    (fun s ->
      Domain_pool.with_lock s.s_lock (fun () ->
          Hashtbl.filter_map_inplace
            (fun gk group ->
              if String.starts_with ~prefix gk then None else Some group)
            s.s_groups))
    t.sub;
  bump_epoch t

let engine_tag = function
  | Floorplanner.Backtracking -> 'b'
  | Floorplanner.Backtracking_v1 -> 'o'
  | Floorplanner.Milp -> 'm'
  | Floorplanner.Hybrid -> 'h'

(* [order.(k)] is the original index of the k-th need in canonical order;
   sorting by [Resource.compare] (ties by index, for stability) makes any
   permutation of the same needs hash to the same key. *)
let canonicalize needs =
  let n = Array.length needs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Resource.compare needs.(i) needs.(j) in
      if c <> 0 then c else compare i j)
    order;
  let sorted = Array.map (fun i -> needs.(i)) order in
  (sorted, order)

(* Decimal digits straight into the buffer: [string_of_int] would
   allocate three short strings per need, a real cost at the query rate
   the delta kernel drives this path at. *)
let rec buf_int buf n =
  if n < 0 then begin
    Buffer.add_char buf '-';
    buf_int buf (-n)
  end
  else begin
    if n >= 10 then buf_int buf (n / 10);
    Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (n mod 10)))
  end

let needs_key ~engine ~node_limit sorted =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (engine_tag engine);
  (match node_limit with
  | None -> Buffer.add_char buf '*'
  | Some l -> buf_int buf l);
  Array.iter
    (fun (r : Resource.t) ->
      Buffer.add_char buf '|';
      buf_int buf r.Resource.clb;
      Buffer.add_char buf '.';
      buf_int buf r.Resource.bram;
      Buffer.add_char buf '.';
      buf_int buf r.Resource.dsp)
    sorted;
  Buffer.contents buf

let group_key ~dk ~engine ~node_limit =
  Printf.sprintf "%s\x00%c%s" dk (engine_tag engine)
    (match node_limit with None -> "*" | Some l -> string_of_int l)

let exact_stripe_of t key =
  t.exact.(Hashtbl.hash key mod Array.length t.exact)

let sub_stripe_of t gk = t.sub.(Hashtbl.hash gk mod Array.length t.sub)

(* ------------------------------------------------------------------ *)
(* Domain-local L1                                                     *)

let get_l1 t =
  let m = Domain.DLS.get t.l1_key in
  let e = Atomic.get t.epoch in
  if m.l1_epoch <> e then begin
    Hashtbl.reset m.l1_tbl;
    m.l1_epoch <- e
  end;
  m

(* Wholesale drop at capacity: simpler than LRU and the table refills
   from L2 hits at memo speed, so the cost is transient. *)
let l1_store t m key entry =
  if Hashtbl.length m.l1_tbl >= t.l1_capacity then Hashtbl.reset m.l1_tbl;
  Hashtbl.replace m.l1_tbl key entry

(* ------------------------------------------------------------------ *)
(* Subsumption index                                                   *)

(* Injective dominance embedding: match every need of [small] to a
   *distinct* need of [big] that covers it component-wise, returning the
   assignment ([assign.(i)] = index in [big] charged for [small.(i)]).
   Greedy (largest small needs claim the first unused covering big need,
   with [big] canonically sorted ascending), so it can miss a matching a
   full bipartite search would find — that only costs cache hits, never
   soundness: any embedding returned is a valid witness. The relation is
   transitive (compose the injections), which the antichain maintenance
   below relies on. *)
let embeds small big =
  let n = Array.length small and m = Array.length big in
  if n > m then None
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        compare (Resource.total_units small.(b))
          (Resource.total_units small.(a)))
      order;
    let used = Array.make m false in
    let assign = Array.make n (-1) in
    let ok = ref true in
    Array.iter
      (fun i ->
        if !ok then begin
          let j = ref 0 in
          while
            !j < m
            && (used.(!j) || not (Resource.fits small.(i) ~within:big.(!j)))
          do
            incr j
          done;
          if !j = m then ok := false
          else begin
            used.(!j) <- true;
            assign.(i) <- !j
          end
        end)
      order;
    if !ok then Some assign else None
  end

let embeds_le a b = embeds a b <> None

(* Antichain insertion. Feasible entries: keep only maximal need-sets
   (a dominated set is already answered by its dominator). Infeasible
   entries: keep only minimal ones. The cap bounds memory; eviction drops
   the oldest survivors, which only costs future hits. *)
let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let add_feas group entry =
  if
    not
      (List.exists
         (fun f -> embeds_le entry.f_needs f.f_needs)
         group.g_feas)
  then begin
    let kept =
      List.filter
        (fun f -> not (embeds_le f.f_needs entry.f_needs))
        group.g_feas
    in
    group.g_feas <- take antichain_cap (entry :: kept)
  end

let add_infeas group needs =
  if not (List.exists (fun s -> embeds_le s needs) group.g_infeas) then begin
    let kept =
      List.filter (fun s -> not (embeds_le needs s)) group.g_infeas
    in
    group.g_infeas <- take antichain_cap (needs :: kept)
  end

let sub_insert t ~gk ~sorted (report : Floorplanner.report) =
  match report.verdict with
  | Floorplanner.Unknown -> ()
  | Floorplanner.Feasible placements ->
    let stripe = sub_stripe_of t gk in
    Domain_pool.with_lock stripe.s_lock (fun () ->
        let group =
          match Hashtbl.find_opt stripe.s_groups gk with
          | Some g -> g
          | None ->
            let g = { g_feas = []; g_infeas = [] } in
            Hashtbl.replace stripe.s_groups gk g;
            g
        in
        add_feas group
          {
            f_needs = sorted;
            f_placements = placements;
            f_engine = report.engine_used;
          })
  | Floorplanner.Infeasible ->
    let stripe = sub_stripe_of t gk in
    Domain_pool.with_lock stripe.s_lock (fun () ->
        let group =
          match Hashtbl.find_opt stripe.s_groups gk with
          | Some g -> g
          | None ->
            let g = { g_feas = []; g_infeas = [] } in
            Hashtbl.replace stripe.s_groups gk g;
            g
        in
        add_infeas group sorted)

(* Probe the subsumption index for a derived verdict on [sorted]. *)
let sub_lookup t ~gk ~sorted =
  let stripe = sub_stripe_of t gk in
  Domain_pool.with_lock stripe.s_lock (fun () ->
      match Hashtbl.find_opt stripe.s_groups gk with
      | None -> None
      | Some group -> (
        let feas =
          List.find_map
            (fun f ->
              match embeds sorted f.f_needs with
              | Some assign -> Some (f, assign)
              | None -> None)
            group.g_feas
        in
        match feas with
        | Some (f, assign) ->
          (* Hand back only the matched subset of the stored rects, in
             the query's sorted order. *)
          let placements =
            Array.init (Array.length sorted) (fun i ->
                f.f_placements.(assign.(i)))
          in
          Some
            {
              verdict = Floorplanner.Feasible placements;
              engine_used = f.f_engine;
            }
        | None ->
          if List.exists (fun s -> embeds_le s sorted) group.g_infeas then
            Some
              {
                verdict = Floorplanner.Infeasible;
                engine_used = Floorplanner.Backtracking;
              }
          else None))

(* Cached placements follow the sorted order; hand them back in the
   caller's order ([sorted.(k) = needs.(order.(k))], so the rectangle
   placed for slot [k] covers original region [order.(k)]). *)
let unpermute order = function
  | Floorplanner.Feasible [||] -> Floorplanner.Feasible [||]
  | Floorplanner.Feasible placements ->
    let out = Array.make (Array.length placements) placements.(0) in
    Array.iteri (fun k rect -> out.(order.(k)) <- rect) placements;
    Floorplanner.Feasible out
  | (Floorplanner.Infeasible | Floorplanner.Unknown) as v -> v

let check t ?(engine = Floorplanner.Backtracking) ?node_limit device needs =
  if Array.length needs = 0 then
    Floorplanner.check ~engine ?node_limit device needs
  else begin
    let t0 = Unix.gettimeofday () in
    let dk =
      match Atomic.get t.dk_memo with
      | Some (d, k) when d == device -> k
      | _ ->
        let k = device_key device in
        Atomic.set t.dk_memo (Some (device, k));
        k
    in
    let sorted, order = canonicalize needs in
    let key = fused_key dk (needs_key ~engine ~node_limit sorted) in
    let l1 = if t.l1_capacity > 0 then Some (get_l1 t) else None in
    let l1_cached =
      match l1 with
      | None -> None
      | Some m -> (
        match Hashtbl.find_opt m.l1_tbl key with
        | Some e ->
          Atomic.incr m.l1_hits_n;
          Some e
        | None -> None)
    in
    match l1_cached with
    | Some e ->
      {
        Floorplanner.verdict = unpermute order e.verdict;
        engine_used = e.engine_used;
        elapsed = Unix.gettimeofday () -. t0;
      }
    | None -> (
      let stripe = exact_stripe_of t key in
      (* Optimistic versioned read of the published snapshot: the only
         place parallel workers used to serialize on a stripe mutex. *)
      match Smap.find_opt key (Seqlock.get stripe.e_map) with
      | Some e ->
        Atomic.incr stripe.e_hits;
        (match l1 with Some m -> l1_store t m key e | None -> ());
        {
          Floorplanner.verdict = unpermute order e.verdict;
          engine_used = e.engine_used;
          elapsed = Unix.gettimeofday () -. t0;
        }
      | None -> (
        let gk = group_key ~dk ~engine ~node_limit in
        match (if t.subsumption then sub_lookup t ~gk ~sorted else None) with
        | Some derived ->
          (match derived.verdict with
          | Floorplanner.Feasible placements when t.debug ->
            (* Debug builds re-verify reused placements against the weaker
               query before trusting the subsumption argument. *)
            (match Floorplanner.validate device ~needs:sorted placements with
            | Ok () -> ()
            | Error msg ->
              invalid_arg ("Fp_cache: invalid subsumed placement: " ^ msg))
          | _ -> ());
          (* Promote the derived verdict to an exact entry so the next
             identical query is an O(1) exact hit; promotions are not
             counted as [inserts] (no fresh check ran). *)
          Atomic.incr stripe.e_sub_hits;
          Seqlock.update stripe.e_map (fun m ->
              if Smap.mem key m then m else Smap.add key derived m);
          (match l1 with Some m -> l1_store t m key derived | None -> ());
          {
            Floorplanner.verdict = unpermute order derived.verdict;
            engine_used = derived.engine_used;
            elapsed = Unix.gettimeofday () -. t0;
          }
        | None ->
          (* Run outside every lock: feasibility is expensive and other
             workers must not stall behind it. A racing duplicate check is
             harmless (both compute the same deterministic verdict). *)
          let report = Floorplanner.check ~engine ?node_limit device sorted in
          let e =
            {
              verdict = report.Floorplanner.verdict;
              engine_used = report.Floorplanner.engine_used;
            }
          in
          Atomic.incr stripe.e_misses;
          let inserted = ref false in
          Seqlock.update stripe.e_map (fun m ->
              if Smap.mem key m then m
              else begin
                inserted := true;
                Smap.add key e m
              end);
          if !inserted then Atomic.incr stripe.e_inserts;
          if t.subsumption then sub_insert t ~gk ~sorted report;
          (match l1 with Some m -> l1_store t m key e | None -> ());
          { report with Floorplanner.verdict = unpermute order report.verdict }))
  end
