(** Top-level floorplan feasibility check (the paper's step H).

    Given the reconfigurable regions produced by the scheduler, decide
    whether they admit a floorplan complying with the PDR granularity
    constraints of the device, and produce one when they do. Two engines
    are available: a combinatorial backtracking packer (default, fast)
    and the MILP formulation (used as a cross-check and as the faithful
    port of [3]'s approach). *)

type engine =
  | Backtracking  (** the column-interval packer (default, fast) *)
  | Backtracking_v1
      (** the original backtracking packer, kept as the equivalence
          oracle for [Backtracking] *)
  | Milp
  | Hybrid  (** backtracking first; on [Unknown], fall back to MILP *)

type verdict =
  | Feasible of Placement.rect array
  | Infeasible
  | Unknown

type report = {
  verdict : verdict;
  engine_used : engine;
  elapsed : float;  (** wall-clock seconds spent in the check *)
}

val check : ?engine:engine -> ?node_limit:int -> ?jobs:int ->
  Resched_fabric.Device.t -> Resched_fabric.Resource.t array -> report
(** [check device needs] runs the requested [engine] (default
    [Backtracking]). [jobs] parallelizes the MILP engine's
    branch-and-bound (ignored by [Backtracking]). Requirements must all
    be non-zero. *)

val validate : Resched_fabric.Device.t ->
  needs:Resched_fabric.Resource.t array -> Placement.rect array ->
  (unit, string) result
(** Independent verification that a claimed floorplan is correct: right
    count, in-bounds rectangles, pairwise disjoint, and each rectangle's
    resources cover its region's requirement. *)

val quick_capacity_check : Resched_fabric.Device.t ->
  Resched_fabric.Resource.t array -> bool
(** Necessary conditions only: total requirements fit the device totals,
    per-kind column x clock-region tile budgets are respected, and the
    regions' minimal rectangular footprints fit the device area
    (see {!Packer.capacity_bounds_ok}). The scheduler uses this as a
    cheap pre-filter; [false] proves infeasibility. *)
