module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource

type rect = { c0 : int; c1 : int; r0 : int; r1 : int }

let width r = r.c1 - r.c0 + 1
let height r = r.r1 - r.r0 + 1

let overlap a b =
  a.c0 <= b.c1 && b.c0 <= a.c1 && a.r0 <= b.r1 && b.r0 <= a.r1

let contains ~outer r =
  outer.c0 <= r.c0 && r.c1 <= outer.c1 && outer.r0 <= r.r0 && r.r1 <= outer.r1

let resources device r =
  Device.rect_resources device ~c0:r.c0 ~c1:r.c1 ~r0:r.r0 ~r1:r.r1

let pp ppf r =
  Format.fprintf ppf "[cols %d-%d, rows %d-%d]" r.c0 r.c1 r.r0 r.r1

let candidate_count_cap = 512

(* ------------------------------------------------------------------ *)
(* Prefix-sum grid: O(1) resource vectors for any rectangle.

   [cum_k.(c)] holds the kind-[k] units contributed by columns [0..c-1]
   of a single clock-region row, so a rect spanning [c0..c1] x h rows
   encloses [h * (cum_k.(c1+1) - cum_k.(c0))] units of kind [k]. *)

type grid = {
  g_device : Device.t;
  g_ncols : int;
  g_rows : int;
  g_clb : int array;  (* length ncols+1 *)
  g_bram : int array;
  g_dsp : int array;
  g_tot : int array;  (* all kinds together; rect area in resource units *)
}

let grid device =
  let ncols = Array.length device.Device.columns in
  let g_clb = Array.make (ncols + 1) 0
  and g_bram = Array.make (ncols + 1) 0
  and g_dsp = Array.make (ncols + 1) 0
  and g_tot = Array.make (ncols + 1) 0 in
  for c = 0 to ncols - 1 do
    let u = Device.column_units device ~col:c in
    g_clb.(c + 1) <- g_clb.(c) + u.Resource.clb;
    g_bram.(c + 1) <- g_bram.(c) + u.Resource.bram;
    g_dsp.(c + 1) <- g_dsp.(c) + u.Resource.dsp;
    g_tot.(c + 1) <- g_tot.(c) + Resource.total_units u
  done;
  { g_device = device; g_ncols = ncols; g_rows = device.Device.rows;
    g_clb; g_bram; g_dsp; g_tot }

let grid_resources g r =
  let h = r.r1 - r.r0 + 1 in
  Resource.make
    ~clb:(h * (g.g_clb.(r.c1 + 1) - g.g_clb.(r.c0)))
    ~bram:(h * (g.g_bram.(r.c1 + 1) - g.g_bram.(r.c0)))
    ~dsp:(h * (g.g_dsp.(r.c1 + 1) - g.g_dsp.(r.c0)))

let grid_area g r =
  (r.r1 - r.r0 + 1) * (g.g_tot.(r.c1 + 1) - g.g_tot.(r.c0))

(* Same enumeration as [candidates] below (same sliding window, same
   sort, same cap — property-tested to return the identical list), but
   on unboxed int prefix sums instead of allocated [Resource.t] values,
   and with the sort key precomputed instead of re-deriving each rect's
   resource vector inside the comparator. *)
let grid_candidates g need =
  if Resource.is_zero need then
    invalid_arg "Placement.candidates: zero requirement";
  let ncols = g.g_ncols and rows = g.g_rows in
  let n_clb = need.Resource.clb
  and n_bram = need.Resource.bram
  and n_dsp = need.Resource.dsp in
  let acc = ref [] in
  for r0 = 0 to rows - 1 do
    for r1 = r0 to rows - 1 do
      let h = r1 - r0 + 1 in
      (* span [c0..c1] covers the need, in h-row units *)
      let covers c0 c1 =
        h * (g.g_clb.(c1 + 1) - g.g_clb.(c0)) >= n_clb
        && h * (g.g_bram.(c1 + 1) - g.g_bram.(c0)) >= n_bram
        && h * (g.g_dsp.(c1 + 1) - g.g_dsp.(c0)) >= n_dsp
      in
      let c0 = ref 0 and c1 = ref (-1) in
      let have_fits () = !c1 >= 0 && !c0 <= !c1 && covers !c0 !c1 in
      let continue_ = ref true in
      while !continue_ do
        while (not (have_fits ())) && !c1 < ncols - 1 do
          incr c1
        done;
        if not (have_fits ()) then continue_ := false
        else begin
          while !c0 <= !c1 && !c0 + 1 <= !c1 && covers (!c0 + 1) !c1 do
            incr c0
          done;
          acc := { c0 = !c0; c1 = !c1; r0; r1 } :: !acc;
          incr c0;
          if !c0 > !c1 && !c1 = ncols - 1 then continue_ := false
        end
      done
    done
  done;
  let keyed =
    List.map (fun r -> (grid_area g r, r)) !acc
  in
  let sorted =
    List.sort
      (fun (aa, a) (ab, b) ->
        let c = compare aa ab in
        if c <> 0 then c
        else compare (a.r0, a.c0, a.r1, a.c1) (b.r0, b.c0, b.r1, b.c1))
      keyed
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, x) :: tl -> x :: take (n - 1) tl
  in
  take candidate_count_cap sorted

let candidates device need =
  if Resource.is_zero need then
    invalid_arg "Placement.candidates: zero requirement";
  let ncols = Array.length device.Device.columns in
  let rows = device.Device.rows in
  let acc = ref [] in
  for r0 = 0 to rows - 1 do
    for r1 = r0 to rows - 1 do
      let h = r1 - r0 + 1 in
      (* Sliding window over columns: grow c1 until the window fits,
         then record and slide c0. Per (r0, r1) this yields, for every
         c0, the minimal c1 — but we only keep windows that are minimal
         in the sense that shrinking from the left also breaks
         feasibility, which the slide achieves naturally. *)
      let have = ref Resource.zero in
      let col_res c =
        let unit_ = Device.column_units device ~col:c in
        Resource.scale unit_ (float_of_int h)
      in
      let c0 = ref 0 and c1 = ref (-1) in
      let continue_ = ref true in
      while !continue_ do
        (* Extend right edge until the requirement fits. *)
        while (not (Resource.fits need ~within:!have)) && !c1 < ncols - 1 do
          incr c1;
          have := Resource.add !have (col_res !c1)
        done;
        if not (Resource.fits need ~within:!have) then continue_ := false
        else begin
          (* Shrink from the left while it still fits to make it minimal. *)
          while
            !c0 <= !c1
            && Resource.fits need
                 ~within:(Resource.sub !have (col_res !c0))
          do
            have := Resource.sub !have (col_res !c0);
            incr c0
          done;
          acc := { c0 = !c0; c1 = !c1; r0; r1 } :: !acc;
          (* Drop the left column and continue the scan. *)
          have := Resource.sub !have (col_res !c0);
          incr c0;
          if !c0 > !c1 && !c1 = ncols - 1 then continue_ := false
        end
      done
    done
  done;
  let area r =
    Resource.total_units (resources device r)
  in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (area a) (area b) in
        if c <> 0 then c else compare (a.r0, a.c0, a.r1, a.c1) (b.r0, b.c0, b.r1, b.c1))
      !acc
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take candidate_count_cap sorted
