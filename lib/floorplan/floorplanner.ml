module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource

type engine = Backtracking | Backtracking_v1 | Milp | Hybrid

type verdict =
  | Feasible of Placement.rect array
  | Infeasible
  | Unknown

type report = {
  verdict : verdict;
  engine_used : engine;
  elapsed : float;
}

let of_packer = function
  | Packer.Placed p -> Feasible p
  | Packer.Infeasible -> Infeasible
  | Packer.Unknown -> Unknown

let of_milp = function
  | Milp_model.Placed p -> Feasible p
  | Milp_model.Infeasible -> Infeasible
  | Milp_model.Unknown -> Unknown

let check ?(engine = Backtracking) ?node_limit ?jobs device needs =
  let t0 = Unix.gettimeofday () in
  let verdict, engine_used =
    match engine with
    | Backtracking ->
      ( of_packer
          (Packer.pack ~engine:Packer.Column_interval ?node_limit device needs),
        Backtracking )
    | Backtracking_v1 ->
      ( of_packer
          (Packer.pack ~engine:Packer.Backtracking_v1 ?node_limit device needs),
        Backtracking_v1 )
    | Milp -> (of_milp (Milp_model.pack ?node_limit ?jobs device needs), Milp)
    | Hybrid -> (
      match Packer.pack ~engine:Packer.Column_interval ?node_limit device needs with
      | Packer.Placed p -> (Feasible p, Backtracking)
      | Packer.Infeasible -> (Infeasible, Backtracking)
      | Packer.Unknown ->
        (of_milp (Milp_model.pack ?node_limit ?jobs device needs), Milp))
  in
  { verdict; engine_used; elapsed = Unix.gettimeofday () -. t0 }

let validate device ~needs placements =
  let n = Array.length needs in
  if Array.length placements <> n then Error "placement count mismatch"
  else begin
    let ncols = Array.length device.Device.columns in
    let rows = device.Device.rows in
    let problem = ref None in
    let set_problem msg = if !problem = None then problem := Some msg in
    Array.iteri
      (fun i (r : Placement.rect) ->
        if r.c0 < 0 || r.c1 >= ncols || r.c0 > r.c1 || r.r0 < 0
           || r.r1 >= rows || r.r0 > r.r1
        then set_problem (Printf.sprintf "region %d out of bounds" i)
        else begin
          if not (Resource.fits needs.(i) ~within:(Placement.resources device r))
          then set_problem (Printf.sprintf "region %d under-provisioned" i)
        end)
      placements;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Placement.overlap placements.(i) placements.(j) then
          set_problem (Printf.sprintf "regions %d and %d overlap" i j)
      done
    done;
    match !problem with None -> Ok () | Some msg -> Error msg
  end

let quick_capacity_check device needs =
  let total = Array.fold_left Resource.add Resource.zero needs in
  Resource.fits total ~within:device.Device.total
  && Packer.capacity_bounds_ok device needs
