(** Memoized floorplan feasibility checks.

    PA-R consults the floorplanner once per improving candidate, and
    candidates drawn from different random orderings frequently produce
    the same multiset of region resource requirements. The cache keys a
    {!Floorplanner.check} verdict on the device, the engine/node-limit
    configuration and the *sorted* needs array, so any permutation of an
    already-checked region set is an exact hit: cached placements are
    permuted back to the query's region order before being returned.

    On top of the exact table sits a *monotone subsumption index*:
    floorplan feasibility is antimonotone in region demands, so a
    feasible verdict at needs [R] answers any query [R'] that
    *dominance-embeds* into [R] — every query need charged to a distinct
    stored need that covers it component-wise, including queries with
    fewer regions than [R]. The matched subset of the stored placements
    is reused directly: the rectangles are disjoint and each still
    covers its (smaller) matched need. Dually, an infeasible verdict at
    [R] answers any query that [R] embeds into (a packing of the query
    would contain a packing of [R]). [Unknown] verdicts are never
    subsumed. Subsumption-derived verdicts can be *more* decisive than a
    budget-limited direct check (which might return [Unknown] where the
    index holds a proof); they are never wrong.

    The table is sharded into mutex-protected stripes (exact entries by
    full-key hash, subsumption groups by their device/engine/limit
    class), with per-stripe counters merged on {!stats}, so parallel
    PA-R workers do not serialize on one lock. *)

type t

type stats = {
  hits : int;  (** exact-key hits *)
  sub_hits : int;  (** hits derived from the subsumption index *)
  misses : int;  (** full misses: a fresh check ran *)
  inserts : int;  (** misses whose fresh verdict was stored *)
}

val zero_stats : stats

val diff : stats -> stats -> stats
(** [diff after before] is the component-wise difference — the activity
    between two snapshots of the same cache. *)

val create : ?stripes:int -> ?debug:bool -> unit -> t
(** An empty cache with zeroed counters, sharded into [stripes]
    (default 16, clamped to >= 1) mutex-protected stripes. With
    [~debug:true] (default: set when the [RESCHED_FP_DEBUG] environment
    variable is 1/true/yes), placements reused through the subsumption
    index are revalidated with {!Floorplanner.validate} before being
    returned. *)

val stats : t -> stats
(** Counters summed over all stripes. *)

val stripe_stats : t -> stats array
(** Per-stripe counters; sums to {!stats}. A heavily skewed distribution
    indicates key-hash contention between parallel workers. *)

val clear : t -> unit
(** Drop every entry (exact and subsumption) and reset the counters. *)

val invalidate_device : t -> Resched_fabric.Device.t -> unit
(** Drop the entries for one device (e.g. after re-targeting an
    instance); other devices' entries and the counters are kept. *)

val check : t -> ?engine:Floorplanner.engine -> ?node_limit:int ->
  Resched_fabric.Device.t -> Resched_fabric.Resource.t array ->
  Floorplanner.report
(** Drop-in replacement for {!Floorplanner.check}. Lookup order: exact
    key, then the subsumption index (a derived verdict is promoted to an
    exact entry so repeats become exact hits; promotions do not count as
    [inserts]), then a fresh check whose decisive verdict feeds both
    structures. Feasible placements are always reported in the caller's
    region order and satisfy {!Floorplanner.validate} against the
    queried [needs]. Verdicts are only reused for the same [engine] and
    [node_limit] configuration, and [Unknown] is never derived by
    subsumption. *)
