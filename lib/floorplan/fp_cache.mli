(** Memoized floorplan feasibility checks.

    PA-R consults the floorplanner once per improving candidate, and
    candidates drawn from different random orderings frequently produce
    the same multiset of region resource requirements. The cache keys a
    {!Floorplanner.check} verdict on the device, the engine/node-limit
    configuration and the *sorted* needs array, so any permutation of an
    already-checked region set is an exact hit: cached placements are
    permuted back to the query's region order before being returned.

    {b Two-level read path.} Each domain owns a private, bounded L1 memo
    (domain-local storage, no locks or shared cache lines at all) in
    front of the shared L2. L1 entries are flushed lazily whenever the
    cache's {e invalidation epoch} moves ({!clear},
    {!invalidate_device}), so a stale verdict never outlives an
    invalidation. The shared L2's exact table is sharded into stripes
    whose read path is an {e optimistic versioned read}
    ({!Resched_util.Seqlock}) over an immutable snapshot — parallel
    workers take a stripe mutex only to insert, never to look up.
    Counters are [Atomic.t] everywhere, so {!stats} and {!stripe_stats}
    never block a worker.

    On top of the exact table sits a *monotone subsumption index*:
    floorplan feasibility is antimonotone in region demands, so a
    feasible verdict at needs [R] answers any query [R'] that
    *dominance-embeds* into [R] — every query need charged to a distinct
    stored need that covers it component-wise, including queries with
    fewer regions than [R]. The matched subset of the stored placements
    is reused directly: the rectangles are disjoint and each still
    covers its (smaller) matched need. Dually, an infeasible verdict at
    [R] answers any query that [R] embeds into (a packing of the query
    would contain a packing of [R]). [Unknown] verdicts are never
    subsumed. Subsumption-derived verdicts can be *more* decisive than a
    budget-limited direct check (which might return [Unknown] where the
    index holds a proof); they are never wrong. *)

type t

type stats = {
  l1_hits : int;
      (** hits served by a domain-local L1 memo (no shared state
          touched) *)
  hits : int;  (** exact-key hits in the shared L2 *)
  sub_hits : int;  (** hits derived from the subsumption index *)
  misses : int;  (** full misses: a fresh check ran *)
  inserts : int;  (** misses whose fresh verdict was stored *)
}

val zero_stats : stats

val diff : stats -> stats -> stats
(** [diff after before] is the component-wise difference — the activity
    between two snapshots of the same cache. *)

val lookups : stats -> int
(** [l1_hits + hits + sub_hits + misses]. *)

val hit_rate : stats -> float
(** Combined (L1 + exact + subsumption) hit rate over {!lookups};
    [0.] when there were none. *)

val create : ?stripes:int -> ?l1_capacity:int -> ?subsumption:bool ->
  ?debug:bool -> unit -> t
(** An empty cache with zeroed counters, sharded into [stripes]
    (default 16, clamped to >= 1) L2 stripes. [l1_capacity] (default
    512) bounds each domain's L1 memo — when full it is dropped
    wholesale, which only costs future hits; [0] disables the L1
    entirely (every read goes to the shared L2 — used by tests that
    probe L2 behaviour directly).

    [subsumption] (default [true]) enables the dominance index. It is
    sound but {e more decisive} than the engine: a stored decisive
    verdict can answer a query the engine alone would call
    {!Floorplanner.Unknown} under its node budget, so verdicts then
    depend on what the cache happens to contain. Pass
    [~subsumption:false] for a {e verdict-transparent} cache — every
    verdict handed out is the engine's answer for that exact
    (device, engine, node-limit, canonically-sorted needs) key,
    independent of insertion history, so every run through such a cache
    sees the same verdicts whether entries were warm or cold. (Verdicts
    are computed on the {e canonically sorted} needs; where the node
    budget bites they can differ from a cache-less check on the
    caller's order.) The batch engine ({!Resched_core.Batch}) relies on
    this mode for its per-instance bit-identity guarantee under
    arbitrary slice interleavings.

    With [~debug:true] (default: set when the [RESCHED_FP_DEBUG]
    environment variable is 1/true/yes), placements reused through the
    subsumption index are revalidated with {!Floorplanner.validate}
    before being returned. *)

val stats : t -> stats
(** L2 counters summed over all stripes, plus the L1 counters of every
    domain that has touched this cache. Lock-free: a racing lookup may
    or may not be included, but each lookup lands in exactly one
    counter, so totals never double-count. *)

val stripe_stats : t -> stats array
(** Per-stripe L2 counters; sums to {!stats} minus its [l1_hits] (L1
    hits are domain-local and belong to no stripe, so every row reports
    [l1_hits = 0]). A heavily skewed distribution indicates key-hash
    contention between parallel workers. *)

val stripe_read_retries : t -> int array
(** Per-stripe optimistic-read retries ({!Resched_util.Seqlock.retries})
    — the residual read/write contention on the L2 exact table. All
    zeros means no lookup ever collided with an insert. *)

val epoch : t -> int
(** Current invalidation epoch; moves on {!clear} and
    {!invalidate_device}. Domain-local L1 memos compare their stamp
    against this and flush when behind. *)

val clear : t -> unit
(** Drop every entry (exact and subsumption), reset the counters and
    advance the epoch so every domain's L1 flushes on its next use. *)

val invalidate_device : t -> Resched_fabric.Device.t -> unit
(** Drop the L2 entries for one device (e.g. after re-targeting an
    instance); other devices' entries and the counters are kept. Also
    advances the epoch, so every domain's L1 flushes wholesale (the L1
    is not indexed by device; dropping it entirely is the conservative,
    correct choice). *)

val check : t -> ?engine:Floorplanner.engine -> ?node_limit:int ->
  Resched_fabric.Device.t -> Resched_fabric.Resource.t array ->
  Floorplanner.report
(** Drop-in replacement for {!Floorplanner.check}. Lookup order: the
    calling domain's L1 memo, then the L2 exact stripe (optimistic
    versioned read), then the subsumption index (a derived verdict is
    promoted to an exact entry so repeats become exact hits; promotions
    do not count as [inserts]), then a fresh check whose decisive
    verdict feeds both L2 structures; every L2 answer is also copied
    into the caller's L1. Feasible placements are always reported in the
    caller's region order and satisfy {!Floorplanner.validate} against
    the queried [needs]. Verdicts are only reused for the same [engine]
    and [node_limit] configuration, and [Unknown] is never derived by
    subsumption. *)
