(** Memoized floorplan feasibility checks.

    PA-R consults the floorplanner once per improving candidate, and
    candidates drawn from different random orderings frequently produce
    the same multiset of region resource requirements. The cache keys a
    {!Floorplanner.check} verdict on the device, the engine/node-limit
    configuration and the *sorted* needs array, so any permutation of an
    already-checked region set is a hit: cached placements are permuted
    back to the query's region order before being returned.

    The structure is thread-safe (a single mutex guards the table and the
    counters) and is shared by all workers of a parallel PA-R run. *)

type t

type stats = {
  hits : int;
  misses : int;
  inserts : int;  (** misses whose fresh verdict was stored *)
}

val create : unit -> t
(** An empty cache with zeroed counters. *)

val stats : t -> stats

val clear : t -> unit
(** Drop every entry and reset the counters. *)

val invalidate_device : t -> Resched_fabric.Device.t -> unit
(** Drop the entries for one device (e.g. after re-targeting an
    instance); other devices' entries and the counters are kept. *)

val check : t -> ?engine:Floorplanner.engine -> ?node_limit:int ->
  Resched_fabric.Device.t -> Resched_fabric.Resource.t array ->
  Floorplanner.report
(** Drop-in replacement for {!Floorplanner.check}. On a miss the fresh
    check runs on the canonically sorted needs and its verdict is stored;
    on a hit the stored verdict is returned with [elapsed] equal to the
    (negligible) lookup time. Feasible placements are always reported in
    the caller's region order and satisfy {!Floorplanner.validate}
    against the queried [needs]. Verdicts are only reused for the same
    [engine] and [node_limit], so a bounded [Unknown] can never shadow a
    decisive verdict obtained under a different configuration. *)
