module Lp = Resched_milp.Lp
module Branch_bound = Resched_milp.Branch_bound
module Resource = Resched_fabric.Resource
module Device = Resched_fabric.Device

type outcome =
  | Placed of Placement.rect array
  | Infeasible
  | Unknown

let candidates_per_region = 12

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let pack ?(node_limit = 2_000) ?jobs device needs =
  let n = Array.length needs in
  if n = 0 then Placed [||]
  else begin
    let truncated = ref false in
    let cands =
      Array.map
        (fun need ->
          let all = Placement.candidates device need in
          if List.length all > candidates_per_region then truncated := true;
          take candidates_per_region all)
        needs
    in
    if Array.exists (fun c -> c = []) cands then Infeasible
    else begin
      let m = Lp.create () in
      (* x.(i).(p) = 1 iff region i uses its p-th candidate; the
         objective (total occupied resource units) only serves to make
         the solve deterministic. *)
      let x =
        Array.mapi
          (fun i cl ->
            Array.of_list
              (List.mapi
                 (fun p rect ->
                   let area =
                     float_of_int
                       (Resource.total_units (Placement.resources device rect))
                   in
                   ( Lp.add_binary m ~name:(Printf.sprintf "x_%d_%d" i p)
                       ~obj:area (),
                     rect ))
                 cl))
          cands
      in
      Array.iter
        (fun row ->
          Lp.add_constraint m
            (Array.to_list (Array.map (fun (v, _) -> (v, 1.)) row))
            Lp.Eq 1.)
        x;
      (* Tile-occupancy rows: every column x clock-region tile hosts at
         most one placement. Tighter and far smaller than pairwise
         conflicts. *)
      let ncols = Array.length device.Device.columns in
      for c = 0 to ncols - 1 do
        for r = 0 to device.Device.rows - 1 do
          let terms = ref [] in
          Array.iter
            (fun row ->
              Array.iter
                (fun ((v : Lp.var), (rect : Placement.rect)) ->
                  if
                    rect.Placement.c0 <= c && c <= rect.Placement.c1
                    && rect.Placement.r0 <= r
                    && r <= rect.Placement.r1
                  then terms := (v, 1.) :: !terms)
                row)
            x;
          match !terms with
          | [] | [ _ ] -> ()
          | terms -> Lp.add_constraint m terms Lp.Le 1.
        done
      done;
      match Branch_bound.solve ~node_limit ?jobs m with
      | Branch_bound.Optimal { values; _ }
      | Branch_bound.Feasible { values; _ } ->
        let placements =
          Array.map
            (fun (row : (Lp.var * Placement.rect) array) ->
              let rect = ref None in
              Array.iter
                (fun ((v : Lp.var), r) ->
                  if values.((v :> int)) > 0.5 then rect := Some r)
                row;
              match !rect with Some r -> r | None -> assert false)
            x
        in
        Placed placements
      | Branch_bound.Infeasible ->
        (* Infeasibility is only a proof when no candidate list was
           truncated by the per-region cap. *)
        if !truncated then Unknown else Infeasible
      | Branch_bound.Node_limit -> Unknown
      | Branch_bound.Unbounded -> assert false
    end
  end
