module Device = Resched_fabric.Device
module Resource = Resched_fabric.Resource

type engine = Backtracking_v1 | Column_interval

type outcome =
  | Placed of Placement.rect array
  | Infeasible
  | Unknown

exception Done of Placement.rect array
exception Budget

(* ------------------------------------------------------------------ *)
(* Capacity lower bounds: cheap necessary conditions, proven before any
   search. All three are counting arguments over disjoint rectangles of
   whole column x clock-region tiles, so a violation is a certificate of
   infeasibility (never a heuristic rejection). *)

let kind_profile device =
  (* (kind, columns of that kind, units per column x clock-region tile) *)
  Array.map
    (fun kind ->
      let cols = ref 0 and units = ref 0 in
      Array.iteri
        (fun c k ->
          if k = kind then begin
            incr cols;
            if !units = 0 then
              units := Resource.get (Device.column_units device ~col:c) kind
          end)
        device.Device.columns;
      (kind, !cols, !units))
    Resource.kinds

(* Minimal tile footprint of one region: any covering rect of height [h]
   must span at least [ceil (need_k / (units_k * h))] columns of EACH
   kind it consumes, and those columns are distinct; minimizing over the
   admissible heights bounds the rect's area from below. *)
let min_tiles ~rows ~profile (need : Resource.t) =
  let best = ref max_int in
  for h = 1 to rows do
    let width = ref 0 and ok = ref true in
    Array.iter
      (fun (kind, cols, units) ->
        let n = Resource.get need kind in
        if n > 0 then begin
          if units = 0 || cols = 0 then ok := false
          else begin
            let w = (n + (units * h) - 1) / (units * h) in
            if w > cols then ok := false else width := !width + w
          end
        end)
      profile;
    if !ok then best := Stdlib.min !best (h * !width)
  done;
  !best  (* max_int when no height admits a cover: region cannot fit *)

let capacity_bounds_ok device needs =
  let rows = device.Device.rows in
  let ncols = Array.length device.Device.columns in
  let profile = kind_profile device in
  (* (a) per-kind row-slot budget: region i consumes at least
     ceil (need_k / units_k) kind-k column x row tiles, and the device
     has only cols_k * rows of them. *)
  let slots_ok =
    Array.for_all
      (fun (kind, cols, units) ->
        let demand =
          Array.fold_left
            (fun acc (need : Resource.t) ->
              let n = Resource.get need kind in
              if n = 0 then acc
              else if units = 0 then max_int / 2
              else acc + ((n + units - 1) / units))
            0 needs
        in
        demand <= cols * rows)
      profile
  in
  (* (b) total tile budget over the regions' minimal footprints. *)
  slots_ok
  &&
  let area = ref 0 and possible = ref true in
  Array.iter
    (fun need ->
      match min_tiles ~rows ~profile need with
      | t when t = max_int -> possible := false
      | t -> area := !area + t)
    needs;
  !possible && !area <= ncols * rows

(* ------------------------------------------------------------------ *)
(* v1: first-fit greedy + naive backtracking over [Placement.candidates]
   lists. Kept verbatim as the oracle for equivalence tests. *)

let greedy needs_order cands =
  let n = Array.length cands in
  let chosen = Array.make n None in
  let ok =
    List.for_all
      (fun region ->
        let free rect =
          Array.for_all
            (function
              | Some placed -> not (Placement.overlap placed rect)
              | None -> true)
            chosen
        in
        match List.find_opt free cands.(region) with
        | Some rect ->
          chosen.(region) <- Some rect;
          true
        | None -> false)
      needs_order
  in
  if ok then
    Some (Array.map (function Some r -> r | None -> assert false) chosen)
  else None

(* The v1 search over prebuilt candidate lists: [pack_v1] passes the
   lists [Placement.candidates] returns; the v2 fallback passes the
   identical lists it already built via [Placement.grid_candidates]
   (same rects, same order — pinned by a qcheck property), skipping the
   re-enumeration. *)
let pack_v1_on ~node_limit needs cands =
  let n = Array.length needs in
  if n = 0 then Placed [||]
  else begin
    if Array.exists (fun c -> c = []) cands then Infeasible
    else begin
      let indices = List.init n (fun i -> i) in
      let by_cand_count =
        List.sort
          (fun a b ->
            let c = compare (List.length cands.(a)) (List.length cands.(b)) in
            if c <> 0 then c
            else
              compare
                (Resource.total_units needs.(b))
                (Resource.total_units needs.(a)))
          indices
      in
      let by_area_desc =
        List.sort
          (fun a b ->
            compare (Resource.total_units needs.(b))
              (Resource.total_units needs.(a)))
          indices
      in
      let greedy_result =
        match greedy by_cand_count cands with
        | Some p -> Some p
        | None -> greedy by_area_desc cands
      in
      match greedy_result with
      | Some placements -> Placed placements
      | None ->
        (* Exact search: hardest regions first, snuggest candidates
           first; [node_limit] bounds the effort. *)
        let order = Array.of_list by_cand_count in
        let chosen = Array.make n None in
        let nodes = ref 0 in
        let rec go k =
          if k = n then begin
            let result =
              Array.map (function Some r -> r | None -> assert false) chosen
            in
            raise (Done result)
          end;
          let region = order.(k) in
          List.iter
            (fun rect ->
              incr nodes;
              if !nodes > node_limit then raise Budget;
              let clash =
                Array.exists
                  (function
                    | Some placed -> Placement.overlap placed rect
                    | None -> false)
                  chosen
              in
              if not clash then begin
                chosen.(region) <- Some rect;
                go (k + 1);
                chosen.(region) <- None
              end)
            cands.(region)
        in
        (match go 0 with
        | () -> Infeasible
        | exception Done placements -> Placed placements
        | exception Budget -> Unknown)
    end
  end

let pack_v1 ~node_limit device needs =
  pack_v1_on ~node_limit needs (Array.map (Placement.candidates device) needs)

(* ------------------------------------------------------------------ *)
(* v2: column-interval packer.

   Same candidate universe as v1 (identical minimal-width rects, same
   snuggest-first cap — see [Placement.grid_candidates]), searched with:
   - greedy pre-passes in hardest-first orders, then an exact search in
     descending-demand order, identical demands adjacent;
   - symmetry breaking: regions with equal needs share one candidate
     array and must pick strictly increasing candidate indices (any
     packing of interchangeable regions can be reordered this way);
   - dominance pruning: a candidate contained in another candidate of
     the same region makes the container redundant (whenever the bigger
     rect is free, so is the smaller one covering the same need);
   - bitset occupancy: overlap tests are word-AND over per-row column
     masks instead of a scan of already-placed rects;
   - a memoized infeasible-suffix set: a (depth, first-admissible-index,
     occupancy) state that exhausted every candidate without completing
     is recorded and never re-explored from a different prefix. *)

type cand = {
  k_rect : Placement.rect;
  k_w0 : int;  (* first occupancy word of the column span *)
  k_masks : int array;  (* per-word column masks, length k_w1-k_w0+1 *)
  k_tiles : int array;
      (* column x row tiles the rect consumes, per kind plus a total in
         the last slot — a rect occupies every column in its span, so a
         CLB-only region placed over interleaved BRAM/DSP columns still
         burns their tiles; the demand bounds below account for that. *)
}

let bits_per_word = 63

let masks_of_rect ~tiles (r : Placement.rect) =
  let w0 = r.Placement.c0 / bits_per_word in
  let w1 = r.Placement.c1 / bits_per_word in
  let masks = Array.make (w1 - w0 + 1) 0 in
  for c = r.Placement.c0 to r.Placement.c1 do
    let w = (c / bits_per_word) - w0 in
    masks.(w) <- masks.(w) lor (1 lsl (c mod bits_per_word))
  done;
  { k_rect = r; k_w0 = w0; k_masks = masks; k_tiles = tiles r }

(* Cross-call memo of per-need candidate sets: [grid_candidates] and the
   dominance prune are pure functions of (device, need), and schedulers
   re-check overlapping need multisets constantly, so the enumeration is
   paid once per distinct need instead of once per [pack] call. One
   entry per device (the presets are physically shared constants);
   devices are compared structurally as a fallback so look-alike custom
   fabrics cannot alias. *)
type need_entry = {
  ne_raw : Placement.rect list;  (* exactly [Placement.candidates] *)
  ne_cands : cand array;  (* dominance-pruned, with masks and tiles *)
}

type device_memo = {
  dm_device : Device.t;
  dm_tbl : (Resource.t, need_entry) Hashtbl.t;
}

let memo : device_memo list ref = ref []
let memo_mutex = Mutex.create ()
let memo_cap = 8192

let device_memo_for device =
  Mutex.lock memo_mutex;
  let dm =
    match
      List.find_opt
        (fun dm ->
          dm.dm_device == device
          || (dm.dm_device.Device.rows = device.Device.rows
             && dm.dm_device.Device.columns = device.Device.columns))
        !memo
    with
    | Some dm -> dm
    | None ->
      let dm = { dm_device = device; dm_tbl = Hashtbl.create 256 } in
      memo := dm :: !memo;
      dm
  in
  Mutex.unlock memo_mutex;
  dm

let pack_v2 ~node_limit device needs =
  let n = Array.length needs in
  if n = 0 then Placed [||]
  else if not (capacity_bounds_ok device needs) then Infeasible
  else begin
    let g = lazy (Placement.grid device) in
    let ncols = Array.length device.Device.columns in
    let rows = device.Device.rows in
    (* Descending demand, equal demands adjacent (ties by index so the
       order is deterministic). *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c =
          compare (Resource.total_units needs.(b))
            (Resource.total_units needs.(a))
        in
        if c <> 0 then c
        else begin
          let c = Resource.compare needs.(b) needs.(a) in
          if c <> 0 then c else compare a b
        end)
      order;
    (* Units one column x row tile of each kind provides (0 when the
       device has no column of that kind). *)
    let nkinds = Array.length Resource.kinds in
    let units_per_tile =
      Array.map
        (fun kind ->
          match
            Array.find_index (fun k -> k = kind) device.Device.columns
          with
          | None -> 0
          | Some col ->
            Resource.get (Device.column_units device ~col) kind)
        Resource.kinds
    in
    let tiles (r : Placement.rect) =
      let res = Placement.grid_resources (Lazy.force g) r in
      Array.init (nkinds + 1) (fun i ->
          if i = nkinds then Placement.width r * Placement.height r
          else if units_per_tile.(i) = 0 then 0
          else Resource.get res Resource.kinds.(i) / units_per_tile.(i))
    in
    (* One candidate array per distinct need (via the cross-call memo):
       equal needs must share the array for the symmetry-breaking index
       order to be meaningful — the memo returns one physical entry per
       need, so they do. The entry is built outside the lock (a racing
       duplicate build is benign; last insert wins). *)
    let dm = device_memo_for device in
    let entry_for need =
      Mutex.lock memo_mutex;
      let hit = Hashtbl.find_opt dm.dm_tbl need in
      Mutex.unlock memo_mutex;
      match hit with
      | Some e -> e
      | None ->
        let rects = Placement.grid_candidates (Lazy.force g) need in
        (* Dominance pruning: the list is sorted snuggest-first, so
           only earlier (cheaper) candidates can be contained in a
           later one; drop any rect containing a kept predecessor. *)
        let kept = ref [] in
        List.iter
          (fun r ->
            let dominated =
              List.exists (fun a -> Placement.contains ~outer:r a) !kept
            in
            if not dominated then kept := r :: !kept)
          rects;
        let e =
          {
            ne_raw = rects;
            ne_cands = Array.of_list (List.rev_map (masks_of_rect ~tiles) !kept);
          }
        in
        Mutex.lock memo_mutex;
        if Hashtbl.length dm.dm_tbl >= memo_cap then Hashtbl.reset dm.dm_tbl;
        Hashtbl.replace dm.dm_tbl need e;
        Mutex.unlock memo_mutex;
        e
    in
    let entries = Array.map entry_for needs in
    let cand_arrays = Array.map (fun e -> e.ne_cands) entries in
    if Array.exists (fun c -> Array.length c = 0) cand_arrays then Infeasible
    else begin
      (* Tile-demand lower bounds: whatever candidate a region ends up
         using, it consumes at least the component-wise minimum of its
         candidates' tile vectors (dominance pruning keeps the minimal
         rects, so the minima are exact for the searched universe). If
         the minima already oversubscribe the fabric's tiles of any
         kind — or tiles overall — no packing of these candidates
         exists. Sound for the same universe v1 searches, so proving
         [Infeasible] here can only refine a v1 [Unknown]. *)
      let tile_capacity =
        Array.init (nkinds + 1) (fun i ->
            if i = nkinds then ncols * rows
            else
              rows
              * Array.fold_left
                  (fun acc k -> if k = Resource.kinds.(i) then acc + 1 else acc)
                  0 device.Device.columns)
      in
      let min_tiles =
        Array.map
          (fun (arr : cand array) ->
            let m = Array.copy arr.(0).k_tiles in
            Array.iter
              (fun c ->
                Array.iteri
                  (fun i t -> if t < m.(i) then m.(i) <- t)
                  c.k_tiles)
              arr;
            m)
          cand_arrays
      in
      let root_demand = Array.make (nkinds + 1) 0 in
      Array.iter
        (Array.iteri (fun i t -> root_demand.(i) <- root_demand.(i) + t))
        min_tiles;
      if Array.exists2 (fun d c -> d > c) root_demand tile_capacity then
        Infeasible
      else begin
      let words_per_row = ((ncols + bits_per_word - 1) / bits_per_word) in
      let occ = Array.make (rows * words_per_row) 0 in
      let occ_clear () = Array.fill occ 0 (Array.length occ) 0 in
      let free (c : cand) =
        let ok = ref true in
        let r = c.k_rect in
        let nw = Array.length c.k_masks in
        for row = r.Placement.r0 to r.Placement.r1 do
          let base = (row * words_per_row) + c.k_w0 in
          for w = 0 to nw - 1 do
            if occ.(base + w) land c.k_masks.(w) <> 0 then ok := false
          done
        done;
        !ok
      in
      let apply op (c : cand) =
        let r = c.k_rect in
        let nw = Array.length c.k_masks in
        for row = r.Placement.r0 to r.Placement.r1 do
          let base = (row * words_per_row) + c.k_w0 in
          for w = 0 to nw - 1 do
            occ.(base + w) <- op occ.(base + w) c.k_masks.(w)
          done
        done
      in
      let place = apply (fun o m -> o lor m) in
      let unplace = apply (fun o m -> o land lnot m) in
      (* Greedy pre-pass (as in v1): first-fit over the pruned candidate
         arrays, under two orders — hardest-first (fewest candidates)
         and biggest-first. Most feasible sets in the schedulers' stream
         pack greedily; the exact search is only for the remainder. *)
      let greedy_try region_order =
        occ_clear ();
        let placed = Array.make n None in
        let ok =
          Array.for_all
            (fun region ->
              let cands = cand_arrays.(region) in
              let m = Array.length cands in
              let i = ref 0 in
              while !i < m && not (free cands.(!i)) do incr i done;
              if !i = m then false
              else begin
                place cands.(!i);
                placed.(region) <- Some cands.(!i).k_rect;
                true
              end)
            region_order
        in
        occ_clear ();
        if ok then
          Some (Array.map (function Some r -> r | None -> assert false) placed)
        else None
      in
      let by_cand_count =
        let o = Array.copy order in
        Array.sort
          (fun a b ->
            let c =
              compare
                (Array.length cand_arrays.(a))
                (Array.length cand_arrays.(b))
            in
            if c <> 0 then c
            else begin
              let c =
                compare (Resource.total_units needs.(b))
                  (Resource.total_units needs.(a))
              in
              if c <> 0 then c
              else begin
                let c = Resource.compare needs.(b) needs.(a) in
                if c <> 0 then c else compare a b
              end
            end)
          o;
        o
      in
      match
        match greedy_try by_cand_count with
        | Some p -> Some p
        | None -> greedy_try order
      with
      | Some placements -> Placed placements
      | None ->
      (* Exact search, run as a restart portfolio: the DFS is cheap per
         node but a single region order can get stuck in a barren part
         of the space (the feasible sets it misses are usually found
         almost immediately under a different order). Each restart gets
         a slice of the node budget, its own failed-state memo (the memo
         keys depth, which is order-relative) and a different region
         order; [Infeasible] needs full exhaustion and is only valid
         from a completed restart, [Done] is valid from any. *)
      let attempt region_order budget =
        occ_clear ();
        let chosen_idx = Array.make n (-1) in
        let failed : (int * int * int array, unit) Hashtbl.t =
          Hashtbl.create 64
        in
        (* Suffix tile demand in search order: what the regions still to
           be placed at depth [k] must consume, at minimum. Compared
           against the free-tile vector at every node, this prunes whole
           subtrees of tight sets — which is what lets exhaustion (an
           infeasibility proof) finish inside the node budget. *)
        let suffix_demand =
          let s = Array.make_matrix (n + 1) (nkinds + 1) 0 in
          for k = n - 1 downto 0 do
            let m = min_tiles.(region_order.(k)) in
            for i = 0 to nkinds do
              s.(k).(i) <- s.(k + 1).(i) + m.(i)
            done
          done;
          s
        in
        let free_tiles = Array.copy tile_capacity in
        let spend c =
          Array.iteri
            (fun i t -> free_tiles.(i) <- free_tiles.(i) - t)
            c.k_tiles
        in
        let refund c =
          Array.iteri
            (fun i t -> free_tiles.(i) <- free_tiles.(i) + t)
            c.k_tiles
        in
        let nodes = ref 0 in
        let rec go k min_idx =
          if k = n then begin
            let result =
              Array.make n (Array.get cand_arrays 0).(0).k_rect
            in
            for j = 0 to n - 1 do
              result.(region_order.(j)) <-
                cand_arrays.(region_order.(j)).(chosen_idx.(j)).k_rect
            done;
            raise (Done result)
          end;
          if Array.exists2 (fun d f -> d > f) suffix_demand.(k) free_tiles
          then
            (* Remaining demand oversubscribes the free tiles: proven
               empty, no need to enumerate (or memoize) the subtree. *)
            ()
          else begin
            let key = (k, min_idx, Array.copy occ) in
            if not (Hashtbl.mem failed key) then begin
              let region = region_order.(k) in
              let cands = cand_arrays.(region) in
              let m = Array.length cands in
              for i = min_idx to m - 1 do
                incr nodes;
                if !nodes > budget then raise Budget;
                let c = cands.(i) in
                if free c then begin
                  place c;
                  spend c;
                  chosen_idx.(k) <- i;
                  let next_min =
                    if
                      k + 1 < n
                      && Resource.equal needs.(region_order.(k + 1))
                           needs.(region)
                    then i + 1
                    else 0
                  in
                  go (k + 1) next_min;
                  refund c;
                  unplace c
                end
              done;
              Hashtbl.add failed key ()
            end
          end
        in
        match go 0 0 with
        | () -> Infeasible
        | exception Done placements -> Placed placements
        | exception Budget -> Unknown
      in
      (* Restart orders. All are deterministic; all keep regions with
         equal needs adjacent (they share a candidate array, so they tie
         on every sort key and fall through to the index tiebreak),
         which the symmetry-breaking floor relies on. *)
      let shuffled =
        (* Deterministic pseudo-random rank per *distinct* need (equal
           needs share the rank and stay adjacent), from an LCG seeded
           by the region count. *)
        let rank = Array.make n 0 in
        let state = ref (0x9E3779B9 + n) in
        let next () =
          state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
          !state
        in
        let seen = ref [] in
        Array.iteri
          (fun i need ->
            match
              List.find_opt (fun (d, _) -> Resource.equal d need) !seen
            with
            | Some (_, r) -> rank.(i) <- r
            | None ->
              let r = next () in
              seen := (need, r) :: !seen;
              rank.(i) <- r)
          needs;
        let o = Array.init n (fun i -> i) in
        Array.sort
          (fun a b ->
            let c = compare rank.(a) rank.(b) in
            if c <> 0 then c else compare a b)
          o;
        o
      in
      let ascending = Array.init n (fun i -> order.(n - 1 - i)) in
      let slice num den = Stdlib.max 1 (node_limit * num / den) in
      let rec portfolio = function
        | [] ->
          (* Portfolio fallback: every restart exhausted its slice;
             retry with the v1 search, whose different ordering
             occasionally reaches a packing the restarts miss. Rare
             (well under 1% of the schedulers' stream), and it makes
             the engine never less decisive than v1 by construction.
             Runs on the raw candidate lists already in hand — the
             same lists v1 would rebuild. *)
          pack_v1_on ~node_limit needs
            (Array.map (fun e -> e.ne_raw) entries)
        | (region_order, budget) :: rest -> (
          match attempt region_order budget with
          | Unknown -> portfolio rest
          | decisive -> decisive)
      in
      portfolio
        [
          (order, slice 1 2);
          (by_cand_count, slice 1 4);
          (shuffled, slice 1 8);
          (ascending, slice 1 8);
        ]
      end
    end
  end

let pack ?(engine = Column_interval) ?(node_limit = 200_000) device needs =
  match engine with
  | Backtracking_v1 -> pack_v1 ~node_limit device needs
  | Column_interval -> pack_v2 ~node_limit device needs
