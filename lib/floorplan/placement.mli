(** Feasible placements of reconfigurable regions on the device fabric.

    Following the feasible-placement-detection idea of Rabozzi et al. [3],
    a placement of a region is an axis-aligned rectangle of whole
    column x clock-region tiles whose enclosed resources cover the
    region's requirements. Only *minimal-width* rectangles are enumerated
    (for a fixed row span and left column, the smallest right column that
    fits): any wider rectangle only wastes resources, and a packing using
    wider rectangles can be normalized to one using minimal ones. *)

type rect = { c0 : int; c1 : int; r0 : int; r1 : int }
(** Inclusive column span [c0..c1] and clock-region span [r0..r1]. *)

val width : rect -> int
val height : rect -> int
val overlap : rect -> rect -> bool
val contains : outer:rect -> rect -> bool
val resources : Resched_fabric.Device.t -> rect -> Resched_fabric.Resource.t
val pp : Format.formatter -> rect -> unit

val candidates : Resched_fabric.Device.t -> Resched_fabric.Resource.t ->
  rect list
(** All minimal placements for a region requiring the given resources,
    sorted by enclosed-area (total resource units) ascending, i.e.
    snuggest first. Empty when the region cannot fit anywhere (even on an
    empty device). Raises [Invalid_argument] on the zero requirement. *)

type grid
(** Per-column-type prefix sums over a device's fabric: any rectangle's
    resource vector and area become O(1) lookups instead of a column
    scan. Built once per device by the column-interval packer. *)

val grid : Resched_fabric.Device.t -> grid

val grid_resources : grid -> rect -> Resched_fabric.Resource.t
(** O(1); equals {!resources} on the grid's device. *)

val grid_area : grid -> rect -> int
(** O(1); equals [Resource.total_units (resources device rect)]. *)

val grid_candidates : grid -> Resched_fabric.Resource.t -> rect list
(** Exactly the list {!candidates} returns (same rects, same snuggest-
    first order, same {!candidate_count_cap}), computed on the prefix
    sums — the v1/v2 packers therefore search the same candidate
    universe. Raises [Invalid_argument] on the zero requirement. *)

val candidate_count_cap : int
(** Safety cap on the number of candidates returned per region (the
    snuggest ones are kept). *)
