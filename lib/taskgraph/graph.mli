(** Directed acyclic task graphs.

    Nodes are dense integer identifiers [0 .. size-1]; an edge [(u, v)]
    means task [v] consumes data produced by task [u] and cannot start
    before [u] completes (Sec. III). The structure is mutable so that the
    scheduler can insert the ordering edges required when several tasks
    share a reconfigurable region or a processor (Sec. V-C/V-F); use
    [copy] to schedule without destroying the input graph. *)

type t

exception Cycle of int list
(** Raised by [topological_order] with (one of) the offending cycles. *)

val create : int -> t
(** [create n] is an edgeless graph over [n] nodes. [n >= 0]. *)

val size : t -> int
val copy : t -> t

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [(u, v)]; duplicate insertions are
    ignored. Raises [Invalid_argument] on out-of-range nodes or self
    loops. Cycles are only detected by [topological_order]. *)

val has_edge : t -> int -> int -> bool
val succs : t -> int -> int list
(** Successors in insertion order. *)

val iter_succs : t -> int -> (int -> unit) -> unit
(** Apply a function to every successor without allocating the reversed
    list {!succs} builds. Iteration order is unspecified (currently
    newest insertion first). *)

val succs_rev : t -> int -> int list
(** The successor list in reverse insertion order, {e shared} with the
    graph (never mutate it). Allocation-free counterpart of {!succs} for
    hot read-only loops whose result does not depend on edge order. *)

val preds : t -> int -> int list
val edge_count : t -> int
val edges : t -> (int * int) list
(** All edges, ordered by source node. *)

val sources : t -> int list
(** Nodes without predecessors. *)

val sinks : t -> int list
(** Nodes without successors. *)

val topological_order : t -> int array
(** A topological order of all nodes. Raises {!Cycle} if the graph has a
    directed cycle. *)

val is_acyclic : t -> bool

val reachable : t -> int -> bool array
(** [reachable g u] marks every node reachable from [u] (including [u]). *)

val mark_reachable : t -> int -> bool array -> unit
(** [mark_reachable g u mark] sets [mark.(v)] for every [v] reachable
    from [u] (including [u]), skipping nodes already marked — so
    repeated calls on the same array accumulate a union of descendant
    sets without revisiting shared subgraphs. The array must have one
    slot per node. *)

val mark_coreachable : t -> int -> bool array -> unit
(** Dual of {!mark_reachable} along predecessor edges: accumulates the
    ancestors of [u] (including [u]). *)

type closure
(** Transitive closure of a DAG, packed as a bitset; answers
    reachability pairs in O(1) after one O(V*E/w) construction. *)

val closure : t -> closure
(** Snapshot of the graph's reachability relation. Raises {!Cycle} on
    cyclic graphs. The snapshot does not follow later edge insertions. *)

type closure_buf
(** Reusable backing store for {!closure_with} — the bitset plus the
    Kahn scratch arrays, grown on demand and recycled across calls so a
    restart loop can take one closure per iteration without touching
    the minor heap. *)

val make_closure_buf : unit -> closure_buf

val closure_with : closure_buf -> t -> closure
(** Like {!closure}, but (re)using [buf]'s storage. The returned
    closure {e aliases} the buffer: it is only valid until the next
    [closure_with] call on the same buffer. Answers are identical to
    {!closure}'s. *)

val in_closure : closure -> int -> int -> bool
(** [in_closure c u v] iff [v] was reachable from [u] (including
    [u = v]) when the closure was taken; agrees with
    [(reachable g u).(v)]. *)

val restore : from:t -> t -> unit
(** [restore ~from g] resets [g] to the exact edge set of [from]
    (a graph over the same node count, typically the pristine graph [g]
    was [copy]ed from) without reallocating [g]'s arrays. *)

val pp : Format.formatter -> t -> unit
