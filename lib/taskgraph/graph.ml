type t = {
  n : int;
  succ : int list array; (* reversed insertion order *)
  pred : int list array;
  mutable edge_count : int;
}

exception Cycle of int list

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; succ = Array.make n []; pred = Array.make n []; edge_count = 0 }

let size g = g.n

let copy g =
  { n = g.n;
    succ = Array.copy g.succ;
    pred = Array.copy g.pred;
    edge_count = g.edge_count }

let check_node g u name =
  if u < 0 || u >= g.n then invalid_arg ("Graph." ^ name ^ ": node out of range")

let has_edge g u v =
  check_node g u "has_edge";
  check_node g v "has_edge";
  List.mem v g.succ.(u)

let add_edge g u v =
  check_node g u "add_edge";
  check_node g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if not (List.mem v g.succ.(u)) then begin
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.edge_count <- g.edge_count + 1
  end

let succs g u =
  check_node g u "succs";
  List.rev g.succ.(u)

let iter_succs g u f =
  check_node g u "iter_succs";
  List.iter f g.succ.(u)

let succs_rev g u =
  check_node g u "succs_rev";
  g.succ.(u)

let preds g u =
  check_node g u "preds";
  List.rev g.pred.(u)

let edge_count g = g.edge_count

let edges g =
  (* g.succ.(u) is newest-first; prepending while iterating it leaves the
     per-node edges oldest-first in the result. *)
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) g.succ.(u)
  done;
  !acc

let sources g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if g.pred.(u) = [] then acc := u :: !acc
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if g.succ.(u) = [] then acc := u :: !acc
  done;
  !acc

(* Kahn's algorithm; on failure, extract a cycle by walking unprocessed
   predecessors. *)
let topological_order g =
  let indeg = Array.make g.n 0 in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) g.succ.(u)
  done;
  let queue = Queue.create () in
  for u = 0 to g.n - 1 do
    if indeg.(u) = 0 then Queue.add u queue
  done;
  let order = Array.make g.n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!filled) <- u;
    incr filled;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      g.succ.(u)
  done;
  if !filled = g.n then order
  else begin
    (* Every remaining node (indeg > 0) lies on or leads into a cycle;
       follow predecessors among remaining nodes until a repeat. *)
    let remaining = Array.map (fun d -> d > 0) indeg in
    let start = ref (-1) in
    Array.iteri (fun u r -> if r && !start = -1 then start := u) remaining;
    let seen = Array.make g.n (-1) in
    let rec walk u path depth =
      if seen.(u) >= 0 then begin
        let cycle = ref [] in
        List.iteri (fun i v -> if List.length path - i <= depth - seen.(u) then cycle := v :: !cycle) path;
        raise (Cycle (u :: List.filter (fun v -> v <> u) !cycle))
      end;
      seen.(u) <- depth;
      match List.filter (fun p -> remaining.(p)) g.pred.(u) with
      | [] -> raise (Cycle [ u ])
      | p :: _ -> walk p (u :: path) (depth + 1)
    in
    walk !start [] 0
  end

let is_acyclic g =
  match topological_order g with _ -> true | exception Cycle _ -> false

let reachable g u =
  check_node g u "reachable";
  let mark = Array.make g.n false in
  let rec go v =
    if not mark.(v) then begin
      mark.(v) <- true;
      List.iter go g.succ.(v)
    end
  in
  go u;
  mark

let check_mark g mark name =
  if Array.length mark <> g.n then
    invalid_arg ("Graph." ^ name ^ ": mark length mismatch")

let mark_reachable g u mark =
  check_node g u "mark_reachable";
  check_mark g mark "mark_reachable";
  let rec go v =
    if not mark.(v) then begin
      mark.(v) <- true;
      List.iter go g.succ.(v)
    end
  in
  go u

let mark_coreachable g u mark =
  check_node g u "mark_coreachable";
  check_mark g mark "mark_coreachable";
  let rec go v =
    if not mark.(v) then begin
      mark.(v) <- true;
      List.iter go g.pred.(v)
    end
  in
  go u

type closure = { cn : int; stride : int; bits : Bytes.t }

let closure g =
  let n = g.n in
  let stride = (n + 7) / 8 in
  let bits = Bytes.make (n * stride) '\000' in
  let set_bit u v =
    let off = (u * stride) + (v lsr 3) in
    Bytes.unsafe_set bits off
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get bits off) lor (1 lsl (v land 7))))
  in
  let or_row ~into ~from =
    let a = into * stride and b = from * stride in
    for i = 0 to stride - 1 do
      Bytes.unsafe_set bits (a + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get bits (a + i))
           lor Char.code (Bytes.unsafe_get bits (b + i))))
    done
  in
  let order = topological_order g in
  (* Reverse topological order: a node's successors' rows are complete
     before its own row is assembled. *)
  for i = n - 1 downto 0 do
    let u = order.(i) in
    set_bit u u;
    List.iter (fun v -> or_row ~into:u ~from:v) g.succ.(u)
  done;
  { cn = n; stride; bits }

type closure_buf = {
  mutable cb_bits : Bytes.t;
  mutable cb_indeg : int array; (* doubles as Kahn queue scratch *)
  mutable cb_queue : int array;
}

let make_closure_buf () =
  { cb_bits = Bytes.empty; cb_indeg = [||]; cb_queue = [||] }

let closure_with buf g =
  let n = g.n in
  let stride = (n + 7) / 8 in
  let need = n * stride in
  if Bytes.length buf.cb_bits < need then
    buf.cb_bits <- Bytes.make (max need (2 * Bytes.length buf.cb_bits)) '\000'
  else Bytes.fill buf.cb_bits 0 need '\000';
  if Array.length buf.cb_indeg < n then begin
    buf.cb_indeg <- Array.make n 0;
    buf.cb_queue <- Array.make n 0
  end;
  let bits = buf.cb_bits in
  let indeg = buf.cb_indeg and queue = buf.cb_queue in
  Array.fill indeg 0 n 0;
  for u = 0 to n - 1 do
    List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) g.succ.(u)
  done;
  (* FIFO Kahn over the scratch queue; [queue.(0 .. filled-1)] ends up
     holding a topological order. *)
  let filled = ref 0 in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then begin
      queue.(!filled) <- u;
      incr filled
    end
  done;
  let head = ref 0 in
  while !head < !filled do
    let u = queue.(!head) in
    incr head;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then begin
          queue.(!filled) <- v;
          incr filled
        end)
      g.succ.(u)
  done;
  if !filled <> n then ignore (topological_order g : int array);
  let set_bit u v =
    let off = (u * stride) + (v lsr 3) in
    Bytes.unsafe_set bits off
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get bits off) lor (1 lsl (v land 7))))
  in
  let or_row ~into ~from =
    let a = into * stride and b = from * stride in
    for i = 0 to stride - 1 do
      Bytes.unsafe_set bits (a + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get bits (a + i))
           lor Char.code (Bytes.unsafe_get bits (b + i))))
    done
  in
  for i = n - 1 downto 0 do
    let u = queue.(i) in
    set_bit u u;
    List.iter (fun v -> or_row ~into:u ~from:v) g.succ.(u)
  done;
  { cn = n; stride; bits }

let in_closure c u v =
  if u < 0 || u >= c.cn || v < 0 || v >= c.cn then
    invalid_arg "Graph.in_closure: node out of range";
  let byte = Char.code (Bytes.unsafe_get c.bits ((u * c.stride) + (v lsr 3))) in
  byte land (1 lsl (v land 7)) <> 0

let restore ~from g =
  if from.n <> g.n then invalid_arg "Graph.restore: size mismatch";
  Array.blit from.succ 0 g.succ 0 g.n;
  Array.blit from.pred 0 g.pred 0 g.n;
  g.edge_count <- from.edge_count

let pp ppf g =
  Format.fprintf ppf "graph(%d nodes, %d edges)" g.n g.edge_count
