type t = {
  t_min : int array;
  t_max : int array;
  makespan : int;
  critical : bool array;
  order : int array;
}

let check_inputs g ~durations ~release =
  let n = Graph.size g in
  if Array.length durations <> n then
    invalid_arg "Cpm.compute: durations length mismatch";
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Cpm.compute: negative duration")
    durations;
  match release with
  | None -> ()
  | Some r ->
    if Array.length r <> n then invalid_arg "Cpm.compute: release length mismatch";
    Array.iter
      (fun x -> if x < 0 then invalid_arg "Cpm.compute: negative release")
      r

let run g ~durations ~release =
  check_inputs g ~durations ~release;
  let n = Graph.size g in
  let order = Graph.topological_order g in
  let t_min = Array.make n 0 in
  (match release with
  | None -> ()
  | Some r -> Array.blit r 0 t_min 0 n);
  (* Forward pass: earliest starts. *)
  Array.iter
    (fun u ->
      let finish = t_min.(u) + durations.(u) in
      List.iter
        (fun v -> if t_min.(v) < finish then t_min.(v) <- finish)
        (Graph.succs g u))
    order;
  let makespan =
    let m = ref 0 in
    for u = 0 to n - 1 do
      m := Stdlib.max !m (t_min.(u) + durations.(u))
    done;
    !m
  in
  (* Backward pass: latest finishes. *)
  let t_max = Array.make n makespan in
  for i = n - 1 downto 0 do
    let u = order.(i) in
    List.iter
      (fun v ->
        let latest_start = t_max.(v) - durations.(v) in
        if t_max.(u) > latest_start then t_max.(u) <- latest_start)
      (Graph.succs g u)
  done;
  let critical = Array.make n false in
  for u = 0 to n - 1 do
    critical.(u) <- t_max.(u) - t_min.(u) = durations.(u)
  done;
  { t_min; t_max; makespan; critical; order }

let compute g ~durations = run g ~durations ~release:None

type buffers = {
  b_t_min : int array;
  b_t_max : int array;
  b_critical : bool array;
  b_order : int array;
  b_indeg : int array;
  b_off : int array;  (* n + 1 CSR row offsets *)
  mutable b_adj : int array;  (* CSR edge targets, grown on demand *)
}

let make_buffers n =
  if n < 0 then invalid_arg "Cpm.make_buffers: negative size";
  {
    b_t_min = Array.make n 0;
    b_t_max = Array.make n 0;
    b_critical = Array.make n false;
    b_order = Array.make n 0;
    b_indeg = Array.make n 0;
    b_off = Array.make (n + 1) 0;
    b_adj = [||];
  }

let rec fill_row adj indeg c = function
  | [] -> c
  | v :: tl ->
    adj.(c) <- v;
    indeg.(v) <- indeg.(v) + 1;
    fill_row adj indeg (c + 1) tl

(* [compute] rebuilt on preallocated arrays: same FIFO Kahn order, same
   forward/backward relaxations (max/min folds are iteration-order
   independent), so every field of the result is bit-identical to
   [compute]'s — only the allocations differ. The adjacency lists are
   flattened into a CSR layout first, so the lists (boxed, scattered)
   are chased once instead of once per pass; the three passes then run
   over contiguous int arrays. The scheduler's window refresh runs this
   once per placement, which made the allocating version the single
   hottest site of a restart iteration. *)
let compute_with b g ~durations =
  check_inputs g ~durations ~release:None;
  let n = Graph.size g in
  if Array.length b.b_t_min <> n then
    invalid_arg "Cpm.compute_with: buffers sized for a different graph";
  let e = Graph.edge_count g in
  if Array.length b.b_adj < e then
    b.b_adj <- Array.make (Stdlib.max e (2 * Array.length b.b_adj)) 0;
  let order = b.b_order and indeg = b.b_indeg in
  let off = b.b_off and adj = b.b_adj in
  Array.fill indeg 0 n 0;
  let c = ref 0 in
  for u = 0 to n - 1 do
    off.(u) <- !c;
    c := fill_row adj indeg !c (Graph.succs_rev g u)
  done;
  off.(n) <- !c;
  (* [order] doubles as the FIFO queue: [tail] is the write cursor,
     [head] the read cursor; once the loop drains, [order] holds the
     exact topological order [Graph.topological_order] would return
     (same FIFO discipline, same per-node edge order). *)
  let tail = ref 0 in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then begin
      order.(!tail) <- u;
      incr tail
    end
  done;
  (* The passes below index only with node ids already validated by the
     CSR build (every [adj] entry came from an in-range successor list),
     so unchecked accesses are safe — same reasoning as the packed rows
     of [Graph.closure]. *)
  let head = ref 0 in
  while !head < !tail do
    let u = Array.unsafe_get order !head in
    incr head;
    for j = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
      let v = Array.unsafe_get adj j in
      let d = Array.unsafe_get indeg v - 1 in
      Array.unsafe_set indeg v d;
      if d = 0 then begin
        Array.unsafe_set order !tail v;
        incr tail
      end
    done
  done;
  if !tail < n then ignore (Graph.topological_order g : int array);
  let t_min = b.b_t_min in
  Array.fill t_min 0 n 0;
  let makespan = ref 0 in
  for i = 0 to n - 1 do
    let u = Array.unsafe_get order i in
    let finish = Array.unsafe_get t_min u + Array.unsafe_get durations u in
    if finish > !makespan then makespan := finish;
    for j = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
      let v = Array.unsafe_get adj j in
      if Array.unsafe_get t_min v < finish then Array.unsafe_set t_min v finish
    done
  done;
  let makespan = !makespan in
  let t_max = b.b_t_max in
  Array.fill t_max 0 n makespan;
  for i = n - 1 downto 0 do
    let u = Array.unsafe_get order i in
    let latest = ref (Array.unsafe_get t_max u) in
    for j = Array.unsafe_get off u to Array.unsafe_get off (u + 1) - 1 do
      let v = Array.unsafe_get adj j in
      let latest_start = Array.unsafe_get t_max v - Array.unsafe_get durations v in
      if !latest > latest_start then latest := latest_start
    done;
    Array.unsafe_set t_max u !latest
  done;
  let critical = b.b_critical in
  for u = 0 to n - 1 do
    critical.(u) <- t_max.(u) - t_min.(u) = durations.(u)
  done;
  { t_min; t_max; makespan; critical; order }

let compute_with_release g ~durations ~release =
  run g ~durations ~release:(Some release)

let slack cpm ~durations u = cpm.t_max.(u) - cpm.t_min.(u) - durations.(u)

let critical_path cpm ~durations g =
  (* Start from a critical source and repeatedly follow a critical
     successor whose start abuts our finish. *)
  let n = Graph.size g in
  let start = ref (-1) in
  for u = n - 1 downto 0 do
    if cpm.critical.(u) && cpm.t_min.(u) = 0 && Graph.preds g u = [] then
      start := u
  done;
  if !start = -1 then
    for u = n - 1 downto 0 do
      if cpm.critical.(u) && cpm.t_min.(u) = 0 then start := u
    done;
  if !start = -1 then []
  else begin
    let rec follow u acc =
      let finish = cpm.t_min.(u) + durations.(u) in
      let next =
        List.find_opt
          (fun v -> cpm.critical.(v) && cpm.t_min.(v) = finish)
          (Graph.succs g u)
      in
      match next with
      | Some v -> follow v (u :: acc)
      | None -> List.rev (u :: acc)
    in
    follow !start []
  end
