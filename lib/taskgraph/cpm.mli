(** Critical Path Method over a task graph (Sec. V-B).

    Given a duration for every task, computes for each task [t] the time
    window [w_t = [T_MIN_t, T_MAX_t]]: [T_MIN_t] is the earliest instant
    at which [t] can start, and [T_MAX_t] the latest instant at which it
    can finish without delaying the schedule. A task is *critical* when
    its window is exactly as wide as its duration (zero slack). *)

type t = {
  t_min : int array;   (** earliest start per task *)
  t_max : int array;   (** latest finish per task *)
  makespan : int;      (** length of the critical path *)
  critical : bool array;
  order : int array;   (** the topological order used *)
}

val compute : Graph.t -> durations:int array -> t
(** Runs the forward and backward passes. [durations] must have one
    non-negative entry per task. Raises [Graph.Cycle] on cyclic graphs and
    [Invalid_argument] on length mismatch or negative durations. *)

type buffers
(** Preallocated scratch for {!compute_with}: the five arrays a CPM pass
    needs, reusable across calls on graphs of the same size. *)

val make_buffers : int -> buffers
(** Buffers for graphs of the given node count. *)

val compute_with : buffers -> Graph.t -> durations:int array -> t
(** Exactly {!compute} — every field of the result is bit-identical —
    but computed into the given buffers instead of fresh arrays. The
    returned record {e shares} the buffers' arrays: it is only valid
    until the next [compute_with] on the same buffers. The scheduler's
    restart arena uses this for its once-per-placement window refresh;
    anything that must outlive the next refresh copies what it needs
    (or uses {!compute}). *)

val compute_with_release : Graph.t -> durations:int array ->
  release:int array -> t
(** Like {!compute} but every task additionally cannot start before its
    [release] time. Used by the scheduler when part of the schedule is
    already committed. The backward pass keeps [T_MAX] consistent with the
    (possibly release-extended) makespan. *)

val slack : t -> durations:int array -> int -> int
(** [slack cpm ~durations t] = [t_max.(t) - t_min.(t) - durations.(t)];
    0 exactly for critical tasks. *)

val critical_path : t -> durations:int array -> Graph.t -> int list
(** One maximal chain of critical tasks realizing the makespan, in
    execution order. *)
