(* fpga_sched — command-line front end for the resched library.

   Subcommands:
     generate   write a pseudo-random problem instance to a file
     show       print an instance summary (optionally DOT)
     schedule   schedule an instance with a chosen algorithm
     compare    run every algorithm on an instance and tabulate
     suite      materialize the paper's benchmark suite into a directory
*)

module Rng = Resched_util.Rng
module Table = Resched_util.Table
module Graph = Resched_taskgraph.Graph
module Dot = Resched_taskgraph.Dot
module Arch = Resched_platform.Arch
module Instance = Resched_platform.Instance
module Suite = Resched_platform.Suite
module Io = Resched_platform.Io
module Pa = Resched_core.Pa
module Pa_random = Resched_core.Pa_random
module Schedule = Resched_core.Schedule
module Validate = Resched_core.Validate
module Gantt = Resched_core.Gantt
module Metrics = Resched_core.Metrics
module Isk = Resched_baseline.Isk
module List_sched = Resched_baseline.List_sched

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Failure handling

   Operational failures exit with a one-line message and a distinct
   code so scripts can tell them apart (cmdliner keeps 124/125 for CLI
   and internal errors):
     3  input/IO error (missing file, parse error, write failure)
     4  a schedule failed validation                                   *)

let exit_io = 3
let exit_invalid = 4

let die code fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "fpga_sched: error: %s\n" msg;
      exit code)
    fmt

let check_or_die what sched =
  match Validate.check sched with
  | Ok () -> ()
  | Error vs ->
    let v = List.hd vs in
    die exit_invalid "%s failed validation (%d violation(s); first: [%s] %s)"
      what (List.length vs) v.Validate.code v.Validate.message

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_arg =
  let doc = "Enable debug logging of the scheduler pipeline." in
  Term.(
    const setup_logs
    $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc))

let seed_arg =
  let doc = "Seed for pseudo-random generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for pa-r and for the is1/is5 MILP floorplanner (1 = \
     sequential; defaults to the available cores)."
  in
  let positive =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt positive (Resched_util.Domain_pool.available_cores ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let tasks_arg =
  let doc = "Number of application tasks." in
  Arg.(value & opt int 20 & info [ "tasks"; "n" ] ~docv:"N" ~doc)

let load_instance path =
  match Io.load path with
  | Ok inst -> inst
  | Error msg -> die exit_io "cannot load %s: %s" path msg

let instance_arg =
  let doc = "Problem instance file (see lib/platform/io.mli for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate seed tasks out =
  let rng = Rng.create seed in
  let inst = Suite.instance rng ~tasks in
  (match out with
  | Some path ->
    Io.save path inst;
    Printf.printf "wrote %s (%d tasks, %d edges)\n" path tasks
      (Graph.edge_count inst.Instance.graph)
  | None -> print_string (Io.to_string inst));
  0

let generate_cmd =
  let out =
    let doc = "Output file (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc = "generate a pseudo-random problem instance" in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const generate $ seed_arg $ tasks_arg $ out)

(* ------------------------------------------------------------------ *)
(* show                                                                *)

let show path dot =
  let inst = load_instance path in
  Format.printf "%a@." Instance.pp_summary inst;
  if dot then
    Dot.to_channel stdout ~label:(Instance.task_name inst) inst.Instance.graph
  else begin
    let n = Instance.size inst in
    for u = 0 to n - 1 do
      Format.printf "  %s:" (Instance.task_name inst u);
      Array.iter
        (fun i -> Format.printf " %a" Resched_platform.Impl.pp i)
        inst.Instance.impls.(u);
      Format.printf "@."
    done
  end;
  0

let show_cmd =
  let dot =
    let doc = "Emit the task graph in Graphviz DOT syntax." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let doc = "print an instance summary" in
  Cmd.v (Cmd.info "show" ~doc) Term.(const show $ instance_arg $ dot)

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)

type algo = A_pa | A_par | A_is1 | A_is5 | A_heft | A_sw

let algo_conv =
  let parse = function
    | "pa" -> Ok A_pa
    | "pa-r" | "par" -> Ok A_par
    | "is1" | "is-1" -> Ok A_is1
    | "is5" | "is-5" -> Ok A_is5
    | "heft" -> Ok A_heft
    | "sw" -> Ok A_sw
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  Arg.conv (parse, fun ppf _ -> Format.fprintf ppf "<algo>")

let run_algo ?cache algo ~budget_s ~reuse ~seed ~jobs inst =
  (* All algorithms consult the same floorplan oracle, so one shared
     [cache] (as in [compare_]) lets PA's shrink attempts, PA-R's
     iterations and the IS-k/HEFT retry loops reuse each other's
     verdicts. *)
  match algo with
  | A_pa ->
    let config =
      { Pa.default_config with Pa.module_reuse = reuse; floorplan_cache = cache }
    in
    fst (Pa.run ~config inst)
  | A_par -> (
    let config = { Pa.default_config with Pa.module_reuse = reuse } in
    let cache =
      match cache with
      | Some c -> c
      | None -> Resched_floorplan.Fp_cache.create ()
    in
    let before = Resched_floorplan.Fp_cache.stats cache in
    let outcome =
      Pa_random.run_parallel ~config ~seed ~jobs ~cache
        ~budget_seconds:budget_s inst
    in
    let st =
      Resched_floorplan.Fp_cache.diff
        (Resched_floorplan.Fp_cache.stats cache)
        before
    in
    Logs.info (fun m ->
        m "PA-R: %d iterations on %d worker(s); floorplan cache %d L1 + %d \
           exact + %d subsumption hits / %d misses"
          outcome.Pa_random.iterations jobs
          st.Resched_floorplan.Fp_cache.l1_hits
          st.Resched_floorplan.Fp_cache.hits
          st.Resched_floorplan.Fp_cache.sub_hits
          st.Resched_floorplan.Fp_cache.misses);
    match outcome.Pa_random.schedule with
    | Some sched -> sched
    | None ->
      Printf.eprintf
        "note: PA-R found no floorplannable schedule in %.1fs; falling back \
         to PA\n"
        budget_s;
      fst (Pa.run inst))
  | A_is1 ->
    fst
      (Isk.run
         ~config:
           {
             (Isk.config ~k:1) with
             Isk.module_reuse = reuse;
             Isk.floorplan_jobs = jobs;
             Isk.floorplan_cache = cache;
           }
         inst)
  | A_is5 ->
    fst
      (Isk.run
         ~config:
           {
             (Isk.config ~k:5) with
             Isk.module_reuse = reuse;
             Isk.floorplan_jobs = jobs;
             Isk.floorplan_cache = cache;
           }
         inst)
  | A_heft -> List_sched.run ~module_reuse:reuse ?cache inst
  | A_sw -> Pa.all_software_schedule inst

let schedule path algo budget_ms reuse seed jobs gantt save svg_gantt
    svg_floorplan =
  let inst = load_instance path in
  let t0 = Unix.gettimeofday () in
  let sched =
    run_algo algo ~budget_s:(float_of_int budget_ms /. 1000.) ~reuse ~seed
      ~jobs inst
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_or_die "computed schedule" sched;
  Format.printf "%a@." Schedule.pp_summary sched;
  Format.printf "%a@." Metrics.pp (Metrics.compute sched);
  Printf.printf "scheduler wall-clock: %.3fs\n" elapsed;
  if gantt then begin
    print_newline ();
    Gantt.print sched
  end;
  (match save with
  | Some out ->
    Resched_core.Schedule_io.save out sched;
    Printf.printf "schedule written to %s\n" out
  | None -> ());
  (match svg_gantt with
  | Some out ->
    Resched_viz.Render.save out (Resched_viz.Render.gantt sched);
    Printf.printf "gantt SVG written to %s\n" out
  | None -> ());
  (match svg_floorplan with
  | Some out -> (
    match sched.Schedule.floorplan with
    | Some placements when Array.length placements > 0 ->
      let needs =
        Array.map (fun (r : Schedule.region) -> r.Schedule.res)
          sched.Schedule.regions
      in
      Resched_viz.Render.save out
        (Resched_viz.Render.floorplan
           inst.Instance.arch.Resched_platform.Arch.device ~needs placements);
      Printf.printf "floorplan SVG written to %s\n" out
    | Some _ | None ->
      Printf.eprintf "note: no floorplanned regions to draw\n")
  | None -> ());
  0

let schedule_cmd =
  let algo =
    let doc = "Algorithm: pa, pa-r, is1, is5, heft or sw." in
    Arg.(value & opt algo_conv A_pa & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)
  in
  let budget =
    let doc = "Time budget for pa-r, in milliseconds." in
    Arg.(value & opt int 1000 & info [ "budget-ms" ] ~docv:"MS" ~doc)
  in
  let reuse =
    let doc = "Enable module reuse." in
    Arg.(value & flag & info [ "module-reuse" ] ~doc)
  in
  let gantt =
    let doc = "Print an ASCII Gantt chart." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let save =
    let doc = "Write the full schedule (instance + decisions) to FILE." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let svg_gantt =
    let doc = "Render the schedule as an SVG Gantt chart to FILE." in
    Arg.(value & opt (some string) None & info [ "svg-gantt" ] ~docv:"FILE" ~doc)
  in
  let svg_floorplan =
    let doc = "Render the floorplan as SVG to FILE." in
    Arg.(
      value & opt (some string) None & info [ "svg-floorplan" ] ~docv:"FILE" ~doc)
  in
  let doc = "schedule an instance" in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const (fun () -> schedule)
      $ verbose_arg $ instance_arg $ algo $ budget $ reuse $ seed_arg
      $ jobs_arg $ gantt $ save $ svg_gantt $ svg_floorplan)

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)

let optimize path seed_budget_ms polish_budget_ms reuse seed jobs gantt save =
  let inst = load_instance path in
  (* one verdict-transparent cache spans seeding and polishing, so the
     move kernel's re-queries hit the PA-R run's stored verdicts *)
  let cache = Resched_floorplan.Fp_cache.create ~subsumption:false () in
  let t0 = Unix.gettimeofday () in
  let seed_sched =
    run_algo A_par ~cache
      ~budget_s:(float_of_int seed_budget_ms /. 1000.)
      ~reuse ~seed ~jobs inst
  in
  let seed_elapsed = Unix.gettimeofday () -. t0 in
  check_or_die "seed schedule" seed_sched;
  let config =
    { Resched_core.Delta.default_config with
      Resched_core.Delta.cache = Some cache }
  in
  let outcome =
    Resched_core.Lns.polish ~config ~seed
      ~budget_seconds:(float_of_int polish_budget_ms /. 1000.)
      seed_sched
  in
  let final =
    match outcome.Resched_core.Lns.schedule with
    | Some s -> s
    | None -> seed_sched (* feasible seed: polish can only keep or improve *)
  in
  check_or_die "polished schedule" final;
  let st = outcome.Resched_core.Lns.stats in
  Format.printf "%a@." Schedule.pp_summary final;
  Format.printf "%a@." Metrics.pp (Metrics.compute final);
  Printf.printf "seed (pa-r, %.3fs): makespan %d\n" seed_elapsed
    (Schedule.makespan seed_sched);
  Printf.printf
    "polish (lns, %.3fs): makespan %d; %d proposed, %d applied, %d accepted, \
     %d improvement(s), %.0f moves/s\n"
    st.Resched_core.Lns.elapsed
    (Schedule.makespan final)
    st.Resched_core.Lns.proposed st.Resched_core.Lns.applied
    st.Resched_core.Lns.accepted st.Resched_core.Lns.improvements
    (float_of_int st.Resched_core.Lns.proposed
    /. Stdlib.max 1e-9 st.Resched_core.Lns.elapsed);
  if gantt then begin
    print_newline ();
    Gantt.print final
  end;
  (match save with
  | Some out ->
    Resched_core.Schedule_io.save out final;
    Printf.printf "schedule written to %s\n" out
  | None -> ());
  0

let optimize_cmd =
  let seed_budget =
    let doc = "Time budget for the PA-R seeding phase, in milliseconds." in
    Arg.(value & opt int 500 & info [ "seed-budget-ms" ] ~docv:"MS" ~doc)
  in
  let polish_budget =
    let doc = "Time budget for the LNS polish phase, in milliseconds." in
    Arg.(value & opt int 500 & info [ "polish-budget-ms" ] ~docv:"MS" ~doc)
  in
  let reuse =
    let doc = "Enable module reuse." in
    Arg.(value & flag & info [ "module-reuse" ] ~doc)
  in
  let gantt =
    let doc = "Print an ASCII Gantt chart." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let save =
    let doc = "Write the full schedule (instance + decisions) to FILE." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "schedule an instance with PA-R, then polish it with delta-evaluated \
     neighborhood search"
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const (fun () -> optimize)
      $ verbose_arg $ instance_arg $ seed_budget $ polish_budget $ reuse
      $ seed_arg $ jobs_arg $ gantt $ save)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)

let replay_jitter sched trials jitter_pct delays_only seed =
  let module Executor = Resched_sim.Executor in
  let f = float_of_int jitter_pct /. 100. in
  let jitter =
    if jitter_pct = 0 then Executor.Deterministic
    else if delays_only then Executor.Delay_only f
    else Executor.Uniform f
  in
  let rng = Rng.create seed in
  if trials <= 1 then begin
    let t = Executor.execute ~rng ~jitter sched in
    Printf.printf "realized makespan: %d (static %d)\n" t.Executor.makespan
      (Schedule.makespan sched)
  end
  else begin
    let r = Executor.robustness ~rng ~trials ~jitter sched in
    Format.printf "%a@." Executor.pp_robustness r
  end

let replay_faults sched trials seed jobs policy =
  let module Executor = Resched_sim.Executor in
  let module Fault = Resched_sim.Fault in
  let module Campaign = Resched_sim.Campaign in
  let module Repair = Resched_core.Repair in
  if trials <= 1 then begin
    (* Single trial: narrate the run event by event. *)
    let plan = Fault.sample (Rng.create seed) sched in
    let t = Executor.replay_faults ~policy ~plan sched in
    List.iter (fun e -> Format.printf "fired:  %a@." Fault.pp_event e)
      t.Executor.fired;
    List.iter (fun a -> Format.printf "action: %a@." Repair.pp_action a)
      t.Executor.actions;
    if t.Executor.moot > 0 then
      Printf.printf "%d sampled event(s) became moot\n" t.Executor.moot;
    (match t.Executor.failure with
    | Some msg -> Printf.printf "unrecovered: %s\n" msg
    | None -> ());
    Printf.printf "%s under %s: makespan %d -> %d (x%.3f)\n"
      (if t.Executor.survived then "survived" else "FAILED")
      (Repair.policy_name policy)
      t.Executor.static_makespan t.Executor.final_makespan
      t.Executor.degradation
  end
  else begin
    let s = Campaign.run ~jobs ~trials ~seed ~policy sched in
    Format.printf "%a@." Campaign.pp_summary s
  end

let replay path trials jitter_pct delays_only seed faults policy jobs =
  match Resched_core.Schedule_io.load path with
  | Error msg -> die exit_io "cannot load %s: %s" path msg
  | Ok sched ->
    check_or_die "loaded schedule" sched;
    Format.printf "loaded: %a@." Schedule.pp_summary sched;
    if faults then replay_faults sched trials seed jobs policy
    else replay_jitter sched trials jitter_pct delays_only seed;
    0

let replay_cmd =
  let file =
    let doc = "Schedule file produced by 'schedule --save'." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEDULE" ~doc)
  in
  let trials =
    let doc = "Monte-Carlo trials (1 = single replay)." in
    Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let jitter =
    let doc = "Task duration jitter in percent (0 = deterministic)." in
    Arg.(value & opt int 20 & info [ "jitter-pct" ] ~docv:"PCT" ~doc)
  in
  let delays_only =
    let doc = "Jitter can only delay tasks, never shorten them." in
    Arg.(value & flag & info [ "delays-only" ] ~doc)
  in
  let faults =
    let doc =
      "Fault-injection mode: replay against seeded fault plans \
       (reconfiguration failures, task overruns, region deaths) with \
       self-healing repair instead of duration jitter. With --trials 1 \
       the single run is narrated event by event."
    in
    Arg.(value & flag & info [ "faults" ] ~doc)
  in
  let policy =
    let policy_conv =
      let parse s =
        match Resched_core.Repair.policy_of_string s with
        | Ok p -> Ok p
        | Error msg -> Error (`Msg msg)
      in
      Arg.conv
        ( parse,
          fun ppf p ->
            Format.pp_print_string ppf (Resched_core.Repair.policy_name p) )
    in
    let doc = "Recovery policy: retry, sw-fallback or resched-tail." in
    Arg.(
      value
      & opt policy_conv Resched_core.Repair.Sw_fallback
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let doc =
    "replay a saved schedule under runtime jitter or injected faults \
     (resched_sim)"
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const replay $ file $ trials $ jitter $ delays_only $ seed_arg $ faults
      $ policy $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)

let compare_ path budget_ms seed jobs =
  let inst = load_instance path in
  let table =
    Table.create
      [ "algorithm"; "makespan"; "HW/SW"; "regions"; "reconf %"; "time [s]" ]
  in
  (* One oracle for the whole comparison: every algorithm probes the same
     region multisets near the feasibility frontier, so verdicts cross
     over between algorithms (and the subsumption index answers the
     shrunken variants). *)
  let cache = Resched_floorplan.Fp_cache.create () in
  List.iter
    (fun (name, algo) ->
      let t0 = Unix.gettimeofday () in
      let sched =
        run_algo ~cache algo
          ~budget_s:(float_of_int budget_ms /. 1000.)
          ~reuse:(algo = A_is1 || algo = A_is5)
          ~seed ~jobs inst
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      check_or_die (name ^ " schedule") sched;
      let m = Metrics.compute sched in
      Table.add_row table
        [
          name;
          string_of_int (Schedule.makespan sched);
          Printf.sprintf "%d/%d" m.Metrics.hw_tasks m.Metrics.sw_tasks;
          string_of_int m.Metrics.regions;
          Printf.sprintf "%.1f" (100. *. m.Metrics.reconfiguration_overhead);
          Printf.sprintf "%.3f" elapsed;
        ])
    [
      ("PA", A_pa); ("PA-R", A_par); ("IS-1", A_is1); ("IS-5", A_is5);
      ("HEFT", A_heft); ("SW-only", A_sw);
    ];
  Table.print table;
  let st = Resched_floorplan.Fp_cache.stats cache in
  let module F = Resched_floorplan.Fp_cache in
  let lookups = F.lookups st in
  if lookups > 0 then
    Printf.printf
      "shared floorplan cache: %d lookups, %d L1 + %d exact + %d subsumption \
       hits (%.0f%%), %d misses\n"
      lookups st.F.l1_hits st.F.hits st.F.sub_hits
      (100. *. F.hit_rate st)
      st.F.misses;
  0

let compare_cmd =
  let budget =
    let doc = "Time budget for pa-r, in milliseconds." in
    Arg.(value & opt int 1000 & info [ "budget-ms" ] ~docv:"MS" ~doc)
  in
  let doc = "run every algorithm on an instance and tabulate" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const (fun () -> compare_) $ verbose_arg $ instance_arg $ budget
      $ seed_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* suite                                                               *)

let suite seed dir count =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun (tasks, insts) ->
      List.iteri
        (fun i inst ->
          let path = Filename.concat dir (Printf.sprintf "t%03d_%02d.inst" tasks i) in
          Io.save path inst)
        insts)
    (Suite.full ~graphs_per_group:count ~seed ());
  Printf.printf "wrote %d instances under %s/\n" (10 * count) dir;
  0

let suite_cmd =
  let dir =
    let doc = "Output directory." in
    Arg.(value & opt string "suite" & info [ "d"; "dir" ] ~docv:"DIR" ~doc)
  in
  let count =
    let doc = "Instances per task-count group (paper: 10)." in
    Arg.(value & opt int 10 & info [ "per-group" ] ~docv:"N" ~doc)
  in
  let doc = "materialize the paper's benchmark suite" in
  Cmd.v (Cmd.info "suite" ~doc) Term.(const suite $ seed_arg $ dir $ count)

(* ------------------------------------------------------------------ *)
(* batch                                                               *)

(* Manifest: one entry per line. Blank lines and [#] comments are
   skipped; a line starting with [{] is a JSON object
   [{"path": ..., "seed": ..., "min_iterations": ..., "budget_ms": ...}]
   (path required, the rest default from the command line); anything
   else is a bare instance path. *)
let parse_manifest path ~seed ~min_iterations ~budget_ms =
  let module Json = Resched_util.Json in
  let lines =
    match In_channel.with_open_text path In_channel.input_lines with
    | lines -> lines
    | exception Sys_error msg -> die exit_io "cannot read %s: %s" path msg
  in
  let entries = ref [] in
  List.iteri
    (fun lineno raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        let where = Printf.sprintf "%s:%d" path (lineno + 1) in
        let inst_path, seed, min_iterations, budget_ms =
          if line.[0] = '{' then begin
            match Json.parse line with
            | Error msg -> die exit_io "%s: %s" where msg
            | Ok obj ->
              let field name get fallback =
                match Json.member name obj with
                | None -> fallback
                | Some v -> (
                  match get v with
                  | Some x -> x
                  | None -> die exit_io "%s: bad %S field" where name)
              in
              ( (match Json.member "path" obj with
                | Some (Json.String p) -> p
                | _ -> die exit_io "%s: missing \"path\"" where),
                field "seed" Json.get_int seed,
                field "min_iterations" Json.get_int min_iterations,
                field "budget_ms" Json.get_int budget_ms )
          end
          else (line, seed, min_iterations, budget_ms)
        in
        (* Relative instance paths resolve against the manifest's
           directory, so a manifest travels with its instances. *)
        let inst_path =
          if Filename.is_relative inst_path then
            Filename.concat (Filename.dirname path) inst_path
          else inst_path
        in
        let inst = load_instance inst_path in
        entries :=
          ( inst_path,
            Resched_core.Batch.request ~seed ~min_iterations
              ~budget_seconds:(float_of_int budget_ms /. 1000.)
              inst )
          :: !entries
      end)
    lines;
  Array.of_list (List.rev !entries)

let batch manifest seed min_iterations budget_ms jobs slice kernel out_dir
    stats_out =
  let module Batch = Resched_core.Batch in
  let module Json = Resched_util.Json in
  let entries = parse_manifest manifest ~seed ~min_iterations ~budget_ms in
  if Array.length entries = 0 then die exit_io "%s: empty manifest" manifest;
  let requests = Array.map snd entries in
  (* Verdict-transparent cache: per-instance results stay independent of
     how the batch's slices happened to interleave. *)
  let cache = Resched_floorplan.Fp_cache.create ~subsumption:false () in
  let outcomes, stats =
    Batch.run ~cache ~kernel ~jobs ?slice requests
  in
  (match out_dir with
  | Some dir ->
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  | None -> ());
  let table =
    Table.create
      [ "instance"; "makespan"; "iterations"; "improv"; "words/iter" ]
  in
  let rows = ref [] in
  Array.iteri
    (fun i (path, (req : Batch.request)) ->
      let o = outcomes.(i) in
      let makespan =
        match o.Pa_random.schedule with
        | None -> None
        | Some sched ->
          check_or_die (Printf.sprintf "schedule for %s" path) sched;
          (match out_dir with
          | Some dir ->
            let stem = Filename.remove_extension (Filename.basename path) in
            let out =
              Filename.concat dir (Printf.sprintf "%03d_%s.sched" i stem)
            in
            Resched_core.Schedule_io.save out sched
          | None -> ());
          Some (Schedule.makespan sched)
      in
      let words_per_iter =
        if o.Pa_random.iterations = 0 then 0.
        else o.Pa_random.minor_words /. float_of_int o.Pa_random.iterations
      in
      Table.add_row table
        [
          Filename.basename path;
          (match makespan with Some m -> string_of_int m | None -> "-");
          string_of_int o.Pa_random.iterations;
          string_of_int (List.length o.Pa_random.trace);
          Printf.sprintf "%.0f" words_per_iter;
        ];
      rows :=
        Json.Obj
          [
            ("path", Json.String path);
            ("seed", Json.Int req.Batch.seed);
            ( "makespan",
              match makespan with Some m -> Json.Int m | None -> Json.Null );
            ("iterations", Json.Int o.Pa_random.iterations);
            ("improvements", Json.Int (List.length o.Pa_random.trace));
            ("minor_words", Json.float o.Pa_random.minor_words);
          ]
        :: !rows)
    entries;
  Table.print table;
  let per_second =
    if stats.Batch.wall_seconds > 0. then
      float_of_int (Array.length requests) /. stats.Batch.wall_seconds
    else 0.
  in
  Printf.printf
    "batch: %d instance(s), %d iterations in %.3fs on %d worker(s) (%d \
     slices of %d); %.1f instances/s; %.0f minor words/iter\n"
    (Array.length requests) stats.Batch.total_iterations
    stats.Batch.wall_seconds stats.Batch.jobs stats.Batch.total_slices
    stats.Batch.slice per_second
    (if stats.Batch.total_iterations = 0 then 0.
     else
       stats.Batch.total_minor_words
       /. float_of_int stats.Batch.total_iterations);
  (match stats_out with
  | Some out ->
    Json.write_file out
      (Json.Obj
         [
           ("schema", Json.String "resched-batch/1");
           ("jobs", Json.Int stats.Batch.jobs);
           ("slice", Json.Int stats.Batch.slice);
           ("wall_seconds", Json.float stats.Batch.wall_seconds);
           ("total_iterations", Json.Int stats.Batch.total_iterations);
           ("total_slices", Json.Int stats.Batch.total_slices);
           ("total_minor_words", Json.float stats.Batch.total_minor_words);
           ("instances", Json.List (List.rev !rows));
         ]);
    Printf.printf "stats written to %s\n" out
  | None -> ());
  0

let batch_cmd =
  let manifest =
    let doc =
      "Manifest file: one instance per line, either a bare path or a JSON \
       object {\"path\", \"seed\", \"min_iterations\", \"budget_ms\"}. \
       Relative paths resolve against the manifest's directory."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST" ~doc)
  in
  let min_iterations =
    let doc = "Default restart iterations per instance." in
    Arg.(value & opt int 200 & info [ "min-iterations" ] ~docv:"N" ~doc)
  in
  let budget =
    let doc =
      "Default wall-clock budget per instance in milliseconds, counted \
       from batch launch (0 = exactly min-iterations restarts)."
    in
    Arg.(value & opt int 0 & info [ "budget-ms" ] ~docv:"MS" ~doc)
  in
  let slice =
    let doc =
      "Restarts a worker runs on one instance before moving to the next \
       (default: derived from the batch size; results never depend on it)."
    in
    Arg.(value & opt (some int) None & info [ "slice" ] ~docv:"N" ~doc)
  in
  let kernel =
    let kernel_conv =
      let parse = function
        | "soa" -> Ok `Soa
        | "boxed" -> Ok `Boxed
        | s -> Error (`Msg (Printf.sprintf "unknown kernel %S" s))
      in
      Arg.conv
        ( parse,
          fun ppf k ->
            Format.pp_print_string ppf
              (match k with `Soa -> "soa" | `Boxed -> "boxed") )
    in
    let doc =
      "Restart kernel: soa (struct-of-arrays arenas) or boxed (the \
       allocation-heavy oracle; bit-identical results)."
    in
    Arg.(value & opt kernel_conv `Soa & info [ "kernel" ] ~docv:"KERNEL" ~doc)
  in
  let out_dir =
    let doc = "Write each instance's best schedule under DIR." in
    Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR" ~doc)
  in
  let stats_out =
    let doc = "Write per-instance results and engine stats as JSON to FILE." in
    Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "schedule a manifest of instances over one worker fleet (PA-R batch \
     engine)"
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const (fun () -> batch)
      $ verbose_arg $ manifest $ seed_arg $ min_iterations $ budget
      $ jobs_arg $ slice $ kernel $ out_dir $ stats_out)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

module Server = Resched_serve.Server
module Serve_protocol = Resched_serve.Protocol
module Serve_transport = Resched_serve.Transport

let serve () socket jobs capacity tenant_quota degrade_low degrade_high
    degrade_factor slice retries backoff_ms deadline_ms min_iterations
    budget_ms seed allow_faults max_clients max_line_bytes =
  let cfg =
    Server.config ~capacity ?tenant_quota ?degrade_low ?degrade_high
      ~degrade_factor ~slice ~max_retries:retries
      ~backoff_s:(float_of_int backoff_ms /. 1000.)
      ~default_seed:seed ~default_min_iterations:min_iterations
      ~default_budget_s:(float_of_int budget_ms /. 1000.)
      ?default_deadline_s:
        (Option.map (fun d -> float_of_int d /. 1000.) deadline_ms)
      ~allow_fault_injection:allow_faults ()
  in
  (* Every request is answered through its own connection's writer; the
     server-wide responder is only a backstop and has nowhere sensible
     to send a line, so it drops it. *)
  let srv = Server.create ~respond:(fun _ -> ()) cfg in
  let transport =
    Serve_transport.create ~max_clients ~max_line_bytes
      ~drive_server:(jobs = 1) srv
  in
  (* The daemon's whole life is one dispatch over one persistent pool:
     worker 0 (the calling domain) runs the multiplexing event loop,
     workers 1..jobs-1 run the solver loop. The event loop returns once
     the server is closed (EOF in pipe mode, a shutdown request in
     either mode), drained, and every response has been flushed, so
     every accepted request is answered before the pool is torn down.
     With [jobs = 1] the event loop itself advances the server one
     request at a time between polls. *)
  let run_transport () =
    if jobs = 1 then Serve_transport.run transport
    else begin
      let pool = Resched_util.Domain_pool.Pool.create ~jobs () in
      Fun.protect
        ~finally:(fun () -> Resched_util.Domain_pool.Pool.shutdown pool)
        (fun () ->
          ignore
            (Resched_util.Domain_pool.Pool.map pool (fun i ->
                 if i = 0 then Serve_transport.run transport
                 else Server.work_loop srv)
              : unit array))
    end
  in
  (match socket with
  | None ->
    Serve_transport.add_channel transport ~close_server_on_eof:true
      ~owns_fds:false ~in_fd:Unix.stdin ~out_fd:Unix.stdout ();
    run_transport ()
  | Some path ->
    if Sys.file_exists path then
      die exit_io "socket path %s already exists" path;
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock (Stdlib.max 8 max_clients);
    Printf.eprintf "fpga_sched: serving on %s\n%!" path;
    Serve_transport.listen transport sock;
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      run_transport);
  0

let serve_cmd =
  let socket =
    let doc =
      "Serve on a Unix domain socket at PATH instead of stdin/stdout; up \
       to $(b,--max-clients) connections are multiplexed concurrently on \
       one event loop."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let capacity =
    let doc = "Admission queue bound; beyond it requests are shed." in
    Arg.(value & opt int 64 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let tenant_quota =
    let doc =
      "Max in-flight requests per tenant (default: the queue capacity)."
    in
    Arg.(
      value & opt (some int) None & info [ "tenant-quota" ] ~docv:"N" ~doc)
  in
  let degrade_low =
    let doc =
      "Queue depth where degradation rung 1 (reduced restarts) starts \
       (default: capacity/4)."
    in
    Arg.(
      value & opt (some int) None & info [ "degrade-low" ] ~docv:"N" ~doc)
  in
  let degrade_high =
    let doc =
      "Queue depth where degradation rung 2 (heuristic only) starts \
       (default: 3*capacity/4)."
    in
    Arg.(
      value & opt (some int) None & info [ "degrade-high" ] ~docv:"N" ~doc)
  in
  let degrade_factor =
    let doc = "Restart-budget divisor at degradation rung 1." in
    Arg.(value & opt int 8 & info [ "degrade-factor" ] ~docv:"K" ~doc)
  in
  let slice =
    let doc =
      "Course iterations between cancellation checks (an expired request \
       stops within one slice)."
    in
    Arg.(value & opt int 16 & info [ "slice" ] ~docv:"N" ~doc)
  in
  let retries =
    let doc = "Retries after a failed execution attempt." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff =
    let doc = "Base retry backoff in milliseconds (doubles per attempt)." in
    Arg.(value & opt int 50 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let deadline =
    let doc =
      "Default per-request deadline in milliseconds for requests that \
       carry none (default: unlimited)."
    in
    Arg.(
      value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let min_iterations =
    let doc = "Default restart iterations per request." in
    Arg.(value & opt int 200 & info [ "min-iterations" ] ~docv:"N" ~doc)
  in
  let budget =
    let doc =
      "Default wall-clock budget per request in milliseconds (0 = exactly \
       min-iterations restarts)."
    in
    Arg.(value & opt int 0 & info [ "budget-ms" ] ~docv:"MS" ~doc)
  in
  let allow_faults =
    let doc =
      "Honor the protocol's fail_attempts fault-injection test hook."
    in
    Arg.(value & flag & info [ "allow-fault-injection" ] ~doc)
  in
  let max_clients =
    let doc =
      "Max simultaneously connected clients; past it new connections wait \
       in the kernel accept backlog."
    in
    Arg.(value & opt int 32 & info [ "max-clients" ] ~docv:"N" ~doc)
  in
  let max_line_bytes =
    let doc =
      "Max request line length in bytes; longer lines are answered with a \
       structured rejected/line_too_long response and discarded without \
       dropping the connection."
    in
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-line-bytes" ] ~docv:"BYTES" ~doc)
  in
  let doc =
    "run the solver stack as a resident jsonl service (multiplexed \
     concurrent clients, admission control, deadline budgets, graceful \
     degradation)"
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ verbose_arg $ socket $ jobs_arg $ capacity $ tenant_quota
      $ degrade_low $ degrade_high $ degrade_factor $ slice $ retries
      $ backoff $ deadline $ min_iterations $ budget $ seed_arg
      $ allow_faults $ max_clients $ max_line_bytes)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "resource-efficient scheduling for partially-reconfigurable FPGA-based \
     systems"
  in
  let info = Cmd.info "fpga_sched" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ generate_cmd; show_cmd; schedule_cmd; optimize_cmd; replay_cmd;
        compare_cmd; suite_cmd; batch_cmd; serve_cmd ]
  in
  (* [~catch:false] so operational failures surface as one-line errors
     with our exit codes instead of cmdliner's backtrace dump. [Failure]
     is operational here (raised for malformed inputs and dead sockets
     across the subcommands); genuine programming errors
     ([Invalid_argument], [Not_found], ...) still dump a backtrace on
     purpose — masking those as exit 3 would hide bugs. *)
  exit
    (try Cmd.eval' ~catch:false group with
    | Sys_error msg -> Printf.eprintf "fpga_sched: error: %s\n" msg; exit_io
    | Failure msg -> Printf.eprintf "fpga_sched: error: %s\n" msg; exit_io
    | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "fpga_sched: error: %s: %s%s\n" fn
        (Unix.error_message e)
        (if arg = "" then "" else " (" ^ arg ^ ")");
      exit_io
    | Validate.Invalid vs ->
      Printf.eprintf "fpga_sched: error: invalid schedule (%d violation(s))\n"
        (List.length vs);
      exit_invalid)
